"""NumPy interpreter for pipelines: reference and overlapped-tiled modes.

Two entry points:

* :func:`execute_reference` — every stage over its full domain, in
  topological order.  The semantic ground truth.
* :func:`execute_grouping` — execute a :class:`~repro.fusion.Grouping` the
  way PolyMage's generated code does (Fig. 3 of the paper): the tile-space
  loops of each fused group are shared, each tile computes the expanded
  (overlapped) region of every member stage into per-tile scratch buffers,
  live-outs write their base tile to full buffers, and tiles are
  independent — optionally run on a thread pool, which is exactly what the
  broken inter-tile dependences of overlapped tiling permit.  Per-tile
  stage bodies run as compiled NumPy kernels
  (:mod:`repro.runtime.kernelcache`) with pooled scratch arrays by
  default; ``compile_kernels=False`` restores pure interpretation.

Outputs of the two modes agree except for floating-point association
noise; the integration test suite checks this for every benchmark pipeline
and scheduling strategy.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dsl.function import Function, Op, Reduction
from ..dsl.pipeline import Pipeline
from ..errors import (
    InputDtypeError,
    InputMissingError,
    InputShapeError,
    TileExecutionError,
    error_code,
    is_retryable,
)
from ..obs import METRICS, TRACE
from ..fusion.grouping import Grouping
from ..poly.alignscale import GroupGeometry, compute_group_geometry
from ..resilience.faults import maybe_fail
from .buffers import Buffer, BufferPool, PoolGroup
from .evalexpr import evaluate_cases, evaluate_expr, make_index_grids
from .kernelcache import (
    GroupKernel,
    StageKernel,
    fusion_enabled,
    get_group_kernel,
    stage_kernels,
)

__all__ = [
    "execute_reference",
    "execute_grouping",
    "shared_executor",
    "shutdown_shared_executors",
    "reset_shared_executors_after_fork",
]

#: Rows of the outermost reduction dimension processed per chunk, bounding
#: the temporary index arrays a reduction materialises.
_REDUCTION_CHUNK = 256

#: Tile chunks handed to the thread pool per worker.  One future per *tile*
#: costs a submit/dispatch round-trip per tile; one chunk per worker cannot
#: load-balance the cleanup wave.  A small multiple keeps scheduling
#: overhead bounded while the chunk-size imbalance (sizes differ by at most
#: one tile) stays within what :mod:`repro.model.cost` assumes about
#: cleanup-wave idling.
_CHUNKS_PER_WORKER = 4

#: process-global persistent thread pools, keyed by worker count.  One
#: ``ThreadPoolExecutor`` per distinct ``nthreads`` ever requested — a
#: handful of sizes at most — created lazily and kept for the process
#: lifetime, so steady-state executions pay zero pool setup/teardown.
_SHARED_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}
_SHARED_EXECUTORS_LOCK = threading.Lock()


def shared_executor(nthreads: int) -> ThreadPoolExecutor:
    """The process-global persistent pool with ``nthreads`` workers.

    :func:`execute_grouping` used to construct (and tear down) a fresh
    ``ThreadPoolExecutor`` per fused group; the serve layer executes the
    same pipelines thousands of times, where that setup cost is pure
    waste.  Pools returned here are never shut down mid-process (worker
    threads are created lazily and idle ones cost nothing); callers that
    need explicit teardown — tests, a draining service — call
    :func:`shutdown_shared_executors`.
    """
    if nthreads < 1:
        raise ValueError("nthreads must be positive")
    with _SHARED_EXECUTORS_LOCK:
        pool = _SHARED_EXECUTORS.get(nthreads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=nthreads,
                thread_name_prefix=f"repro-exec{nthreads}",
            )
            _SHARED_EXECUTORS[nthreads] = pool
        return pool


def shutdown_shared_executors(wait: bool = True) -> None:
    """Shut down and drop every process-global pool (tests, service
    shutdown).  Subsequent executions lazily create fresh pools."""
    with _SHARED_EXECUTORS_LOCK:
        pools = list(_SHARED_EXECUTORS.values())
        _SHARED_EXECUTORS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


def reset_shared_executors_after_fork() -> None:
    """Forget every inherited pool in a freshly forked child.

    The pools' worker threads do not exist on the child's side of a
    ``fork()`` — calling ``shutdown(wait=True)`` on one would block
    forever, and submitting to it would queue work nobody runs.  The
    lock is replaced too, in case another thread of the parent held it
    at the instant of the fork.  Fresh pools are created lazily.
    """
    global _SHARED_EXECUTORS_LOCK
    _SHARED_EXECUTORS_LOCK = threading.Lock()
    _SHARED_EXECUTORS.clear()


def _input_buffers(
    pipeline: Pipeline, inputs: Mapping[str, np.ndarray]
) -> Dict[str, Buffer]:
    expected = sorted(img.name for img in pipeline.images)
    buffers: Dict[str, Buffer] = {}
    for img in pipeline.images:
        if img.name not in inputs:
            raise InputMissingError(
                f"missing input image {img.name!r}; expected inputs "
                f"{expected}, got {sorted(inputs)}",
                missing=img.name,
                expected=expected,
                provided=sorted(inputs),
            )
        arr = np.asarray(inputs[img.name])
        shape = pipeline.image_shape(img)
        if arr.shape != shape:
            raise InputShapeError(
                f"input {img.name!r} has shape {arr.shape}, expected {shape}",
                image=img.name,
                actual=arr.shape,
                expected=shape,
            )
        if arr.dtype.kind not in "buifc":
            raise InputDtypeError(
                f"input {img.name!r} has non-numeric dtype {arr.dtype}, "
                f"expected something convertible to "
                f"{img.scalar_type.np_dtype}",
                image=img.name,
                actual=str(arr.dtype),
                expected=str(img.scalar_type.np_dtype),
            )
        buffers[img.name] = Buffer(
            arr.astype(img.scalar_type.np_dtype, copy=False),
            (0,) * len(shape),
        )
    return buffers


def _compute_function_region(
    pipeline: Pipeline,
    stage: Function,
    bounds: Sequence[Tuple[int, int]],
    buffers: Mapping[str, Buffer],
    kernel: Optional[StageKernel] = None,
    pool: Optional[BufferPool] = None,
) -> Buffer:
    """Evaluate a (non-reduction) stage over an inclusive region.

    With a compiled ``kernel`` the region is computed by one call into
    generated NumPy code instead of a tree walk; a ``pool`` additionally
    lets kernels that support in-place stores write into a recycled
    scratch array.  Without a kernel this is the interpreter path,
    byte-for-byte the pre-compilation behaviour.
    """
    grids = make_index_grids(bounds)
    shape = tuple(hi - lo + 1 for lo, hi in bounds)
    dtype = stage.scalar_type.np_dtype
    origin = tuple(lo for lo, _ in bounds)
    if kernel is not None:
        out = (
            pool.acquire(shape, dtype)
            if pool is not None and kernel.uses_out
            else None
        )
        values = kernel.fn(grids, pipeline.env, buffers, out)
        if out is not None and values is not out:
            pool.reclaim(out)
        return Buffer(values, origin)
    env: Dict[str, object] = dict(pipeline.env)
    for var, grid in zip(stage.variables, grids):
        env[var.name] = grid
    values = evaluate_cases(stage.defn, env, buffers, shape, dtype)
    return Buffer(values, origin)


def _compute_reduction(
    pipeline: Pipeline,
    stage: Reduction,
    buffers: Mapping[str, Buffer],
) -> Buffer:
    """Evaluate a reduction over its full reduction domain."""
    dom = pipeline.domain(stage)
    out = Buffer.for_region(dom, stage.scalar_type.np_dtype)
    out.data.fill(stage.default)
    rdom = stage.resolve_reduction_domain(pipeline.env)

    # Accumulator scaffolding (bounds mask, scratch comparison array,
    # relative-index arrays) reused across chunks and rules whenever the
    # broadcast shape repeats — all full-size chunks share one set instead
    # of reallocating it per chunk.
    scaffold: Dict[tuple, tuple] = {}

    r0_lo, r0_hi = rdom[0]
    for chunk_lo in range(r0_lo, r0_hi + 1, _REDUCTION_CHUNK):
        chunk_hi = min(chunk_lo + _REDUCTION_CHUNK - 1, r0_hi)
        bounds = [(chunk_lo, chunk_hi)] + list(rdom[1:])
        grids = make_index_grids(bounds)
        env: Dict[str, object] = dict(pipeline.env)
        for var, grid in zip(stage.reduction_variables, grids):
            env[var.name] = grid
        for rule in stage.defn:
            idx = [
                np.asarray(evaluate_expr(i, env, buffers), dtype=np.int64)
                for i in rule.indices
            ]
            val = np.asarray(evaluate_expr(rule.value, env, buffers))
            arrays = np.broadcast_arrays(val, *idx)
            val_b = arrays[0]
            idx_b = arrays[1:]
            key = (val_b.shape, len(idx_b))
            cached = scaffold.get(key)
            if cached is None:
                mask = np.empty(val_b.shape, dtype=bool)
                tmp = np.empty(val_b.shape, dtype=bool)
                rel = [
                    np.empty(val_b.shape, dtype=np.int64) for _ in idx_b
                ]
                scaffold[key] = (mask, tmp, rel)
            else:
                mask, tmp, rel = cached
            mask.fill(True)
            for d, coords in enumerate(idx_b):
                np.subtract(coords, out.origin[d], out=rel[d])
                np.greater_equal(rel[d], 0, out=tmp)
                np.logical_and(mask, tmp, out=mask)
                np.less(rel[d], out.data.shape[d], out=tmp)
                np.logical_and(mask, tmp, out=mask)
            target = tuple(r[mask] for r in rel)
            contrib = val_b[mask]
            if rule.op == Op.Sum:
                np.add.at(out.data, target, contrib)
            elif rule.op == Op.Max:
                np.maximum.at(out.data, target, contrib)
            else:
                np.minimum.at(out.data, target, contrib)
    return out


def _compute_stage_full(
    pipeline: Pipeline,
    stage: Function,
    buffers: Mapping[str, Buffer],
    kernel: Optional[StageKernel] = None,
) -> Buffer:
    if isinstance(stage, Reduction):
        return _compute_reduction(pipeline, stage, buffers)
    return _compute_function_region(
        pipeline, stage, pipeline.domain(stage), buffers, kernel=kernel
    )


def execute_reference(
    pipeline: Pipeline,
    inputs: Mapping[str, np.ndarray],
    keep_all: bool = False,
) -> Dict[str, np.ndarray]:
    """Run the pipeline untiled, stage by stage.

    Returns output arrays by stage name (all stages with ``keep_all``).
    """
    buffers = _input_buffers(pipeline, inputs)
    for stage in pipeline.stages:
        buffers[stage.name] = _compute_stage_full(pipeline, stage, buffers)
    wanted = (
        [s.name for s in pipeline.stages]
        if keep_all
        else [o.name for o in pipeline.outputs]
    )
    return {name: buffers[name].data for name in wanted}


# ---------------------------------------------------------------------------
# Tiled execution
# ---------------------------------------------------------------------------


def _chunk_tiles(tiles: List, nthreads: int) -> List[List]:
    """Partition ``tiles`` into contiguous chunks for the thread pool.

    Chunk count is ``min(len(tiles), _CHUNKS_PER_WORKER * nthreads)`` and
    chunk sizes differ by at most one tile, so the cleanup-wave imbalance
    stays within the single-wave bound :mod:`repro.model.cost` assumes.
    Serial execution gets one chunk (no scheduling at all).
    """
    if nthreads <= 1 or len(tiles) <= 1:
        return [tiles]
    target = min(len(tiles), _CHUNKS_PER_WORKER * nthreads)
    base, extra = divmod(len(tiles), target)
    chunks: List[List] = []
    start = 0
    for i in range(target):
        size = base + (1 if i < extra else 0)
        chunks.append(tiles[start:start + size])
        start += size
    return chunks


def _stage_plan(
    geom: GroupGeometry, stage: Function, pipeline: Pipeline, radii
) -> List[Tuple[int, int, int, int, int, int, int]]:
    """Per-dimension region coefficients for ``stage``, flattened out of
    the geometry's ``Function``-keyed maps so the tile loop touches only
    plain integers: ``(g, num, den, left, right, dom_lo, dom_hi)``."""
    dom = pipeline.domain(stage)
    rad = radii[stage]
    plan = []
    for j, g in enumerate(geom.align[stage]):
        left, right = rad[g]
        s = geom.scale[stage][j]
        plan.append(
            (g, s.numerator, s.denominator, left, right,
             dom[j][0], dom[j][1])
        )
    return plan


def _region_from_plan(
    plan, tile_lo: Sequence[int], tile_sizes: Sequence[int], expand: bool
) -> Optional[List[Tuple[int, int]]]:
    """The stage-coordinate region one tile must compute
    (``expand=True``: including overlap; ``False``: the base tile only).
    ``None`` when the region is empty."""
    bounds: List[Tuple[int, int]] = []
    for g, num, den, left, right, dlo, dhi in plan:
        if expand:
            rlo = tile_lo[g] - left
            rhi = tile_lo[g] + tile_sizes[g] - 1 + right
        else:
            rlo = tile_lo[g]
            rhi = tile_lo[g] + tile_sizes[g] - 1
        # Stage points p whose scaled position p*s lies in [rlo, rhi + 1):
        # lo = ceil(rlo / s), hi = ceil((rhi + 1) / s) - 1.  With this
        # convention the base regions of consecutive tiles partition the
        # stage domain exactly for any rational scale; expanded regions
        # additionally floor the lower bound for safety.  Pure integer
        # arithmetic on the scale's numerator/denominator — Fraction
        # division per tile per stage dimension is a hot-path cost.
        a = rlo * den
        lo = -((-a) // num)
        if expand:
            floor_lo = a // num
            if floor_lo < lo:
                lo = floor_lo
        hi = -((-(rhi + 1) * den) // num) - 1
        if lo < dlo:
            lo = dlo
        if hi > dhi:
            hi = dhi
        if lo > hi:
            return None
        bounds.append((lo, hi))
    return bounds


def _stage_region(
    geom: GroupGeometry,
    stage: Function,
    pipeline: Pipeline,
    tile_lo: Sequence[int],
    tile_sizes: Sequence[int],
    radii,
    expand: bool,
) -> Optional[List[Tuple[int, int]]]:
    """One-shot form of :func:`_region_from_plan` (building the plan per
    call) for callers outside the tile loop — the guard's reference
    re-execution, the cache simulator, tests."""
    plan = _stage_plan(geom, stage, pipeline, radii)
    return _region_from_plan(plan, tile_lo, tile_sizes, expand)


def _execute_group_tiled(
    pipeline: Pipeline,
    geom: GroupGeometry,
    tile_sizes: Sequence[int],
    buffers: Dict[str, Buffer],
    nthreads: int,
    group_index: int = 0,
    tile_retries: int = 0,
    kernels: Optional[Mapping[str, StageKernel]] = None,
    executor: Optional[ThreadPoolExecutor] = None,
    pools: Optional[PoolGroup] = None,
    group_kernel: Optional[GroupKernel] = None,
) -> None:
    """Execute one fused group with overlapped tiling, updating
    ``buffers`` with its live-out arrays.

    When ``group_kernel`` is given, each tile is one call into the fused
    kernel (all member stages chained, intermediates inlined or held in
    pooled scratch — :mod:`repro.runtime.kernelcache`).  Otherwise stages
    present in ``kernels`` run their compiled kernel per tile (with
    tile-local scratch arrays recycled through a worker-local
    :class:`BufferPool`); absent stages are interpreted.  Tiles are batched
    into contiguous chunks — :func:`_chunk_tiles` — with one future per
    chunk rather than per tile.  Chunks run on ``executor`` when given
    (a persistent pool owned by the caller), else on the process-global
    :func:`shared_executor`; scratch pools come from ``pools`` when given
    (worker-local pools that stay warm across calls), else one fresh pool
    per chunk.

    A tile that raises is retried up to ``tile_retries`` times, then the
    failure surfaces as a :class:`TileExecutionError` (code ``TILE_FAIL``)
    naming the group, the tile, and the original cause — also from inside
    the thread-pool path, where a bare exception would otherwise emerge as
    an opaque traceback out of a future.  Live-outs are published to
    ``buffers`` only after every tile succeeded, so a failed group leaves
    ``buffers`` untouched and a caller can fall back cleanly.
    """
    radii = geom.expansion_radii()
    liveouts = set(geom.liveouts)
    kernels = {} if kernels is None else kernels
    plans = {
        s.name: _stage_plan(geom, s, pipeline, radii) for s in geom.stages
    }
    out_buffers = {
        s.name: Buffer.for_region(pipeline.domain(s), s.scalar_type.np_dtype)
        for s in geom.liveouts
    }

    dim_ranges = [
        range(lo, hi + 1, tile_sizes[g])
        for g, (lo, hi) in enumerate(geom.grid_bounds)
    ]

    if group_kernel is not None:
        region_plans = [plans[n] for n in group_kernel.region_names]
        base_plans = [plans[n] for n in group_kernel.liveout_names]
        if METRICS.enabled:
            METRICS.inc("repro_kernel_fused_groups_total")

    def run_tile(
        tile_index: int,
        tile_lo: Tuple[int, ...],
        attempt: int,
        pool: BufferPool,
    ) -> None:
        maybe_fail(
            "tile", detail=f"g{group_index}t{tile_index}a{attempt}"
        )
        if group_kernel is not None:
            regions = [
                _region_from_plan(p, tile_lo, tile_sizes, True)
                for p in region_plans
            ]
            bases = [
                _region_from_plan(p, tile_lo, tile_sizes, False)
                for p in base_plans
            ]
            try:
                group_kernel.fn(regions, bases, buffers, out_buffers, pool)
            finally:
                pool.release_all()
            return
        scratch: Dict[str, Buffer] = {}
        lookup = _ChainLookup(scratch, buffers)
        try:
            for stage in geom.stages:
                plan = plans[stage.name]
                bounds = _region_from_plan(plan, tile_lo, tile_sizes, True)
                if bounds is None:
                    continue
                result = _compute_function_region(
                    pipeline, stage, bounds, lookup,
                    kernel=kernels.get(stage.name), pool=pool,
                )
                scratch[stage.name] = result
                if stage in liveouts:
                    base = _region_from_plan(
                        plan, tile_lo, tile_sizes, False
                    )
                    if base is not None:
                        out_buffers[stage.name].store_region(
                            base, result.read_region(base)
                        )
        finally:
            # Live-out regions were copied into out_buffers above, so the
            # tile's scratch arrays can all go back for the next tile.
            pool.release_all()

    def run_tile_captured(
        item: Tuple[int, Tuple[int, ...]], pool: BufferPool
    ) -> None:
        tile_index, tile_lo = item
        max_attempts = tile_retries + 1
        attempts = 0
        retryable = True
        for attempt in range(max_attempts):
            attempts = attempt + 1
            try:
                run_tile(tile_index, tile_lo, attempt, pool)
                return
            except Exception as exc:  # noqa: BLE001 - rewrapped below
                last = exc
                if not is_retryable(exc):
                    # Deterministic failure (missing buffer, INPUT_*,
                    # memory budget): identical retries cannot succeed,
                    # so surface TILE_FAIL immediately with the true
                    # attempt count instead of burning the budget.
                    retryable = False
                    if METRICS.enabled:
                        METRICS.inc("repro_tile_nonretryable_total")
                    break
                if attempts < max_attempts and METRICS.enabled:
                    METRICS.inc("repro_tile_retries_total")
        if METRICS.enabled:
            METRICS.inc(
                "repro_tile_failures_total", code=error_code(last)
            )
        raise TileExecutionError(
            f"tile {tile_index} of group {group_index} failed after "
            f"{attempts} attempt(s)"
            f"{'' if retryable else ' (non-retryable)'}: {last}",
            group_index=group_index,
            tile_index=tile_index,
            tile_origin=tuple(tile_lo),
            cause=last,
            attempts=attempts,
            retryable=retryable,
        )

    # Chunk spans run on worker threads where the thread-local span stack
    # is empty — capture the group span here so they parent correctly.
    parent_span = TRACE.current() if TRACE.enabled else None
    if parent_span is not None:
        parent_span.set(fused=group_kernel is not None)

    def run_chunk(chunk: List[Tuple[int, Tuple[int, ...]]]) -> None:
        # Worker-local scratch pool, so lock-free: the group's shared
        # PoolGroup when one was passed (warm across calls), else one
        # fresh pool per chunk.
        pool = pools.get() if pools is not None else BufferPool()
        observing = METRICS.enabled
        if observing:
            # Shared pools carry cumulative counters across chunks and
            # requests — flush only this chunk's delta.
            base = (pool.stat_reused, pool.stat_allocated,
                    pool.stat_reclaimed, pool.stat_evicted)
        with TRACE.span(
            "chunk", parent=parent_span, tiles=len(chunk),
            first_tile=chunk[0][0] if chunk else -1,
        ):
            for item in chunk:
                run_tile_captured(item, pool)
        if observing:
            METRICS.inc("repro_tiles_total", len(chunk))
            METRICS.inc("repro_pool_acquires_total",
                        pool.stat_reused - base[0], result="reused")
            METRICS.inc("repro_pool_acquires_total",
                        pool.stat_allocated - base[1], result="allocated")
            METRICS.inc("repro_pool_reclaims_total",
                        pool.stat_reclaimed - base[2])
            METRICS.inc("repro_pool_evictions_total",
                        pool.stat_evicted - base[3])

    tiles = list(enumerate(itertools.product(*dim_ranges)))
    chunks = _chunk_tiles(tiles, nthreads)
    if nthreads > 1 and len(chunks) > 1:
        tpool = executor if executor is not None else shared_executor(
            nthreads
        )
        futures = [tpool.submit(run_chunk, chunk) for chunk in chunks]
        # Wait for *every* chunk before raising — matching the old
        # per-group pool's shutdown-on-exit semantics, and guaranteeing
        # no stray worker still writes out_buffers after we return.
        first_exc: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
    else:
        for chunk in chunks:
            run_chunk(chunk)

    buffers.update(out_buffers)


class _ChainLookup:
    """Two-level buffer lookup: tile scratch first, then full buffers."""

    __slots__ = ("first", "second")

    def __init__(self, first: Mapping[str, Buffer], second: Mapping[str, Buffer]):
        self.first = first
        self.second = second

    def get(self, name: str) -> Optional[Buffer]:
        buf = self.first.get(name)
        return buf if buf is not None else self.second.get(name)

    def __getitem__(self, name: str) -> Buffer:
        buf = self.get(name)
        if buf is None:
            raise KeyError(name)
        return buf


def _execute_one_group(
    pipeline: Pipeline,
    members,
    tiles: Sequence[int],
    buffers: Dict[str, Buffer],
    nthreads: int,
    group_index: int = 0,
    tile_retries: int = 0,
    kernels: Optional[Mapping[str, StageKernel]] = None,
    executor: Optional[ThreadPoolExecutor] = None,
    pools: Optional[PoolGroup] = None,
    fuse_kernels: Optional[bool] = None,
) -> str:
    """Execute a single group of a grouping, returning the mode used:
    ``"tiled"`` or ``"untiled"`` (groups without an overlap-tiling
    geometry run stage-by-stage over full domains)."""
    geom = compute_group_geometry(pipeline, members)
    if geom is None or len(members) == 1 and isinstance(
        next(iter(members)), Reduction
    ):
        for stage in pipeline.stages:
            if stage in members:
                buffers[stage.name] = _compute_stage_full(
                    pipeline, stage, buffers,
                    kernel=None if kernels is None
                    else kernels.get(stage.name),
                )
        return "untiled"
    if len(tiles) != geom.ndim:
        raise ValueError(
            f"group {[s.name for s in members]} needs {geom.ndim} tile "
            f"sizes, got {len(tiles)}"
        )
    # The fused tier rides on compilation being active (an empty kernel
    # map means --no-compile / REPRO_NO_COMPILE): fused-group kernel →
    # per-stage kernels → interpreter, degrading per group.
    group_kernel = None
    if kernels and len(geom.stages) > 1 and fusion_enabled(fuse_kernels):
        group_kernel = get_group_kernel(pipeline, geom)
    _execute_group_tiled(
        pipeline, geom, tiles, buffers, nthreads,
        group_index=group_index, tile_retries=tile_retries,
        kernels=kernels, executor=executor, pools=pools,
        group_kernel=group_kernel,
    )
    return "tiled"


def execute_grouping(
    pipeline: Pipeline,
    grouping: Grouping,
    inputs: Mapping[str, np.ndarray],
    nthreads: int = 1,
    tile_retries: int = 0,
    compile_kernels: Optional[bool] = None,
    executor: Optional[ThreadPoolExecutor] = None,
    pools: Optional[PoolGroup] = None,
    fuse_kernels: Optional[bool] = None,
) -> Dict[str, np.ndarray]:
    """Execute a grouping with overlapped tiling.

    Groups execute in topological order.  Groups without an overlap-tiling
    geometry (singleton reductions, or Halide-style groups that fuse a
    reduction) are executed stage-by-stage untiled — PolyMage likewise
    leaves reductions unoptimised (Sec. 6.2).

    By default every non-reduction stage is lowered once to a compiled
    NumPy kernel (:mod:`repro.runtime.kernelcache`) and each tile runs the
    kernel instead of re-walking the expression tree; a stage that fails
    to compile is interpreted after a ``KERNEL_COMPILE_FAIL`` warning.
    ``compile_kernels=False`` (the CLI's ``--no-compile``, or the
    ``REPRO_NO_COMPILE`` env knob) forces the pure-interpreter path for
    A/B timing.

    On top of per-stage kernels, each multi-stage group compiles to a
    single *fused* kernel so a tile makes one call for the whole group; a
    group that fails to fuse runs on per-stage kernels after one
    ``KERNEL_FUSE_FAIL`` warning.  ``fuse_kernels=False`` (the CLI's
    ``--no-fuse``, or ``REPRO_NO_FUSE``) disables only this fused tier,
    keeping per-stage kernels — the third arm of the A/B ladder.

    Multi-threaded groups run their tile chunks on ``executor`` when the
    caller owns a persistent pool (the serve layer does), else on the
    lazily created process-global :func:`shared_executor` — either way
    no pool is constructed or torn down per group.  ``pools`` similarly
    lets a caller keep worker-local scratch pools warm across calls
    (:class:`repro.runtime.buffers.PoolGroup`).

    Failures are structured (:mod:`repro.errors`): missing or malformed
    inputs raise ``INPUT_*`` errors up front, and a tile that raises
    surfaces as ``TILE_FAIL`` with its group/tile coordinates after
    ``tile_retries`` bounded retries.  For validation, retry-then-degrade
    execution, and per-group fallback to the reference interpreter, see
    :func:`repro.resilience.guard.execute_guarded`.
    """
    if grouping.pipeline is not pipeline:
        raise ValueError("grouping was built for a different pipeline")
    if nthreads < 1:
        raise ValueError("nthreads must be positive")
    with TRACE.span(
        "prepare", pipeline=pipeline.name,
        compile_kernels=bool(compile_kernels)
        if compile_kernels is not None else "default",
    ):
        buffers = _input_buffers(pipeline, inputs)
        kernels = stage_kernels(pipeline, enabled=compile_kernels)

    observing = METRICS.enabled
    t_exec = time.perf_counter() if observing else 0.0
    with TRACE.span(
        "execute_grouping", pipeline=pipeline.name, nthreads=nthreads,
        groups=grouping.num_groups,
    ):
        for gi, (members, tiles) in enumerate(
            zip(grouping.groups, grouping.tile_sizes)
        ):
            t_group = time.perf_counter() if observing else 0.0
            with TRACE.span(
                "group", index=gi,
                stages=sorted(s.name for s in members),
                tiles=list(tiles),
            ) as gspan:
                mode = _execute_one_group(
                    pipeline, members, tiles, buffers, nthreads,
                    group_index=gi, tile_retries=tile_retries,
                    kernels=kernels, executor=executor, pools=pools,
                    fuse_kernels=fuse_kernels,
                )
                gspan.set(mode=mode)
            if observing:
                METRICS.observe(
                    "repro_group_seconds",
                    time.perf_counter() - t_group,
                    pipeline=pipeline.name,
                )
    if observing:
        METRICS.observe(
            "repro_execute_seconds", time.perf_counter() - t_exec,
            pipeline=pipeline.name, mode="strict",
        )

    return {o.name: buffers[o.name].data for o in pipeline.outputs}
