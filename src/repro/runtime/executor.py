"""NumPy interpreter for pipelines: reference and overlapped-tiled modes.

Two entry points:

* :func:`execute_reference` — every stage over its full domain, in
  topological order.  The semantic ground truth.
* :func:`execute_grouping` — execute a :class:`~repro.fusion.Grouping` the
  way PolyMage's generated code does (Fig. 3 of the paper): the tile-space
  loops of each fused group are shared, each tile computes the expanded
  (overlapped) region of every member stage into per-tile scratch buffers,
  live-outs write their base tile to full buffers, and tiles are
  independent — optionally run on a thread pool, which is exactly what the
  broken inter-tile dependences of overlapped tiling permit.

Outputs of the two modes agree except for floating-point association
noise; the integration test suite checks this for every benchmark pipeline
and scheduling strategy.
"""

from __future__ import annotations

import itertools
import math
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dsl.function import Function, Op, Reduction
from ..dsl.pipeline import Pipeline
from ..errors import (
    InputDtypeError,
    InputMissingError,
    InputShapeError,
    TileExecutionError,
)
from ..fusion.grouping import Grouping
from ..poly.alignscale import GroupGeometry, compute_group_geometry
from ..resilience.faults import maybe_fail
from .buffers import Buffer
from .evalexpr import evaluate_cases, evaluate_expr, make_index_grids

__all__ = ["execute_reference", "execute_grouping"]

#: Rows of the outermost reduction dimension processed per chunk, bounding
#: the temporary index arrays a reduction materialises.
_REDUCTION_CHUNK = 256


def _input_buffers(
    pipeline: Pipeline, inputs: Mapping[str, np.ndarray]
) -> Dict[str, Buffer]:
    expected = sorted(img.name for img in pipeline.images)
    buffers: Dict[str, Buffer] = {}
    for img in pipeline.images:
        if img.name not in inputs:
            raise InputMissingError(
                f"missing input image {img.name!r}; expected inputs "
                f"{expected}, got {sorted(inputs)}",
                missing=img.name,
                expected=expected,
                provided=sorted(inputs),
            )
        arr = np.asarray(inputs[img.name])
        shape = pipeline.image_shape(img)
        if arr.shape != shape:
            raise InputShapeError(
                f"input {img.name!r} has shape {arr.shape}, expected {shape}",
                image=img.name,
                actual=arr.shape,
                expected=shape,
            )
        if arr.dtype.kind not in "buifc":
            raise InputDtypeError(
                f"input {img.name!r} has non-numeric dtype {arr.dtype}, "
                f"expected something convertible to "
                f"{img.scalar_type.np_dtype}",
                image=img.name,
                actual=str(arr.dtype),
                expected=str(img.scalar_type.np_dtype),
            )
        buffers[img.name] = Buffer(
            arr.astype(img.scalar_type.np_dtype, copy=False),
            (0,) * len(shape),
        )
    return buffers


def _compute_function_region(
    pipeline: Pipeline,
    stage: Function,
    bounds: Sequence[Tuple[int, int]],
    buffers: Mapping[str, Buffer],
) -> Buffer:
    """Evaluate a (non-reduction) stage over an inclusive region."""
    grids = make_index_grids(bounds)
    env: Dict[str, object] = dict(pipeline.env)
    for var, grid in zip(stage.variables, grids):
        env[var.name] = grid
    shape = tuple(hi - lo + 1 for lo, hi in bounds)
    values = evaluate_cases(
        stage.defn, env, buffers, shape, stage.scalar_type.np_dtype
    )
    return Buffer(values, tuple(lo for lo, _ in bounds))


def _compute_reduction(
    pipeline: Pipeline,
    stage: Reduction,
    buffers: Mapping[str, Buffer],
) -> Buffer:
    """Evaluate a reduction over its full reduction domain."""
    dom = pipeline.domain(stage)
    out = Buffer.for_region(dom, stage.scalar_type.np_dtype)
    out.data.fill(stage.default)
    rdom = stage.resolve_reduction_domain(pipeline.env)

    r0_lo, r0_hi = rdom[0]
    for chunk_lo in range(r0_lo, r0_hi + 1, _REDUCTION_CHUNK):
        chunk_hi = min(chunk_lo + _REDUCTION_CHUNK - 1, r0_hi)
        bounds = [(chunk_lo, chunk_hi)] + list(rdom[1:])
        grids = make_index_grids(bounds)
        env: Dict[str, object] = dict(pipeline.env)
        for var, grid in zip(stage.reduction_variables, grids):
            env[var.name] = grid
        for rule in stage.defn:
            idx = [
                np.asarray(evaluate_expr(i, env, buffers), dtype=np.int64)
                for i in rule.indices
            ]
            val = np.asarray(evaluate_expr(rule.value, env, buffers))
            arrays = np.broadcast_arrays(val, *idx)
            val_b = arrays[0]
            idx_b = arrays[1:]
            mask = np.ones(val_b.shape, dtype=bool)
            rel: List[np.ndarray] = []
            for d, coords in enumerate(idx_b):
                r = coords - out.origin[d]
                mask &= (r >= 0) & (r < out.data.shape[d])
                rel.append(r)
            target = tuple(r[mask] for r in rel)
            contrib = val_b[mask]
            if rule.op == Op.Sum:
                np.add.at(out.data, target, contrib)
            elif rule.op == Op.Max:
                np.maximum.at(out.data, target, contrib)
            else:
                np.minimum.at(out.data, target, contrib)
    return out


def _compute_stage_full(
    pipeline: Pipeline, stage: Function, buffers: Mapping[str, Buffer]
) -> Buffer:
    if isinstance(stage, Reduction):
        return _compute_reduction(pipeline, stage, buffers)
    return _compute_function_region(
        pipeline, stage, pipeline.domain(stage), buffers
    )


def execute_reference(
    pipeline: Pipeline,
    inputs: Mapping[str, np.ndarray],
    keep_all: bool = False,
) -> Dict[str, np.ndarray]:
    """Run the pipeline untiled, stage by stage.

    Returns output arrays by stage name (all stages with ``keep_all``).
    """
    buffers = _input_buffers(pipeline, inputs)
    for stage in pipeline.stages:
        buffers[stage.name] = _compute_stage_full(pipeline, stage, buffers)
    wanted = (
        [s.name for s in pipeline.stages]
        if keep_all
        else [o.name for o in pipeline.outputs]
    )
    return {name: buffers[name].data for name in wanted}


# ---------------------------------------------------------------------------
# Tiled execution
# ---------------------------------------------------------------------------


def _stage_region(
    geom: GroupGeometry,
    stage: Function,
    pipeline: Pipeline,
    tile_lo: Sequence[int],
    tile_sizes: Sequence[int],
    radii,
    expand: bool,
) -> Optional[List[Tuple[int, int]]]:
    """The stage-coordinate region one tile must compute for ``stage``
    (``expand=True``: including overlap; ``False``: the base tile only).
    ``None`` when the region is empty."""
    dom = pipeline.domain(stage)
    bounds: List[Tuple[int, int]] = []
    for j, g in enumerate(geom.align[stage]):
        left, right = radii[stage][g] if expand else (0, 0)
        rlo = tile_lo[g] - left
        rhi = tile_lo[g] + tile_sizes[g] - 1 + right
        s = geom.scale[stage][j]
        # Stage points p whose scaled position p*s lies in [rlo, rhi + 1):
        # lo = ceil(rlo / s), hi = ceil((rhi + 1) / s) - 1.  With this
        # convention the base regions of consecutive tiles partition the
        # stage domain exactly for any rational scale; expanded regions
        # additionally floor the lower bound for safety.
        lo = int(math.ceil(rlo / s))
        if expand:
            lo = min(lo, int(math.floor(rlo / s)))
        hi = int(math.ceil((rhi + 1) / s)) - 1
        lo, hi = max(lo, dom[j][0]), min(hi, dom[j][1])
        if lo > hi:
            return None
        bounds.append((lo, hi))
    return bounds


def _execute_group_tiled(
    pipeline: Pipeline,
    geom: GroupGeometry,
    tile_sizes: Sequence[int],
    buffers: Dict[str, Buffer],
    nthreads: int,
    group_index: int = 0,
    tile_retries: int = 0,
) -> None:
    """Execute one fused group with overlapped tiling, updating
    ``buffers`` with its live-out arrays.

    A tile that raises is retried up to ``tile_retries`` times, then the
    failure surfaces as a :class:`TileExecutionError` (code ``TILE_FAIL``)
    naming the group, the tile, and the original cause — also from inside
    the thread-pool path, where a bare exception would otherwise emerge as
    an opaque traceback out of a future.  Live-outs are published to
    ``buffers`` only after every tile succeeded, so a failed group leaves
    ``buffers`` untouched and a caller can fall back cleanly.
    """
    radii = geom.expansion_radii()
    liveouts = set(geom.liveouts)
    out_buffers = {
        s.name: Buffer.for_region(pipeline.domain(s), s.scalar_type.np_dtype)
        for s in geom.liveouts
    }

    dim_ranges = [
        range(lo, hi + 1, tile_sizes[g])
        for g, (lo, hi) in enumerate(geom.grid_bounds)
    ]

    def run_tile(tile_index: int, tile_lo: Tuple[int, ...], attempt: int) -> None:
        maybe_fail(
            "tile", detail=f"g{group_index}t{tile_index}a{attempt}"
        )
        scratch: Dict[str, Buffer] = {}
        lookup = _ChainLookup(scratch, buffers)
        for stage in geom.stages:
            bounds = _stage_region(
                geom, stage, pipeline, tile_lo, tile_sizes, radii, True
            )
            if bounds is None:
                continue
            result = _compute_function_region(
                pipeline, stage, bounds, lookup
            )
            scratch[stage.name] = result
            if stage in liveouts:
                base = _stage_region(
                    geom, stage, pipeline, tile_lo, tile_sizes, radii, False
                )
                if base is not None:
                    out_buffers[stage.name].store_region(
                        base, result.read_region(base)
                    )

    def run_tile_captured(item: Tuple[int, Tuple[int, ...]]) -> None:
        tile_index, tile_lo = item
        attempts = tile_retries + 1
        for attempt in range(attempts):
            try:
                run_tile(tile_index, tile_lo, attempt)
                return
            except Exception as exc:  # noqa: BLE001 - rewrapped below
                last = exc
        raise TileExecutionError(
            f"tile {tile_index} of group {group_index} failed after "
            f"{attempts} attempt(s): {last}",
            group_index=group_index,
            tile_index=tile_index,
            tile_origin=tuple(tile_lo),
            cause=last,
            attempts=attempts,
        )

    tiles = list(enumerate(itertools.product(*dim_ranges)))
    if nthreads > 1 and len(tiles) > 1:
        with ThreadPoolExecutor(max_workers=nthreads) as pool:
            futures = [pool.submit(run_tile_captured, item) for item in tiles]
            for future in futures:
                future.result()
    else:
        for item in tiles:
            run_tile_captured(item)

    buffers.update(out_buffers)


class _ChainLookup:
    """Two-level buffer lookup: tile scratch first, then full buffers."""

    __slots__ = ("first", "second")

    def __init__(self, first: Mapping[str, Buffer], second: Mapping[str, Buffer]):
        self.first = first
        self.second = second

    def get(self, name: str) -> Optional[Buffer]:
        buf = self.first.get(name)
        return buf if buf is not None else self.second.get(name)

    def __getitem__(self, name: str) -> Buffer:
        buf = self.get(name)
        if buf is None:
            raise KeyError(name)
        return buf


def _execute_one_group(
    pipeline: Pipeline,
    members,
    tiles: Sequence[int],
    buffers: Dict[str, Buffer],
    nthreads: int,
    group_index: int = 0,
    tile_retries: int = 0,
) -> str:
    """Execute a single group of a grouping, returning the mode used:
    ``"tiled"`` or ``"untiled"`` (groups without an overlap-tiling
    geometry run stage-by-stage over full domains)."""
    geom = compute_group_geometry(pipeline, members)
    if geom is None or len(members) == 1 and isinstance(
        next(iter(members)), Reduction
    ):
        for stage in pipeline.stages:
            if stage in members:
                buffers[stage.name] = _compute_stage_full(
                    pipeline, stage, buffers
                )
        return "untiled"
    if len(tiles) != geom.ndim:
        raise ValueError(
            f"group {[s.name for s in members]} needs {geom.ndim} tile "
            f"sizes, got {len(tiles)}"
        )
    _execute_group_tiled(
        pipeline, geom, tiles, buffers, nthreads,
        group_index=group_index, tile_retries=tile_retries,
    )
    return "tiled"


def execute_grouping(
    pipeline: Pipeline,
    grouping: Grouping,
    inputs: Mapping[str, np.ndarray],
    nthreads: int = 1,
    tile_retries: int = 0,
) -> Dict[str, np.ndarray]:
    """Execute a grouping with overlapped tiling.

    Groups execute in topological order.  Groups without an overlap-tiling
    geometry (singleton reductions, or Halide-style groups that fuse a
    reduction) are executed stage-by-stage untiled — PolyMage likewise
    leaves reductions unoptimised (Sec. 6.2).

    Failures are structured (:mod:`repro.errors`): missing or malformed
    inputs raise ``INPUT_*`` errors up front, and a tile that raises
    surfaces as ``TILE_FAIL`` with its group/tile coordinates after
    ``tile_retries`` bounded retries.  For validation, retry-then-degrade
    execution, and per-group fallback to the reference interpreter, see
    :func:`repro.resilience.guard.execute_guarded`.
    """
    if grouping.pipeline is not pipeline:
        raise ValueError("grouping was built for a different pipeline")
    if nthreads < 1:
        raise ValueError("nthreads must be positive")
    buffers = _input_buffers(pipeline, inputs)

    for gi, (members, tiles) in enumerate(
        zip(grouping.groups, grouping.tile_sizes)
    ):
        _execute_one_group(
            pipeline, members, tiles, buffers, nthreads,
            group_index=gi, tile_retries=tile_retries,
        )

    return {o.name: buffers[o.name].data for o in pipeline.outputs}
