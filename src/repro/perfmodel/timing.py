"""Analytic execution-time estimator — the testbed substitute.

The paper measured wall-clock times on an Intel Xeon (Haswell) and an AMD
Opteron.  Without that hardware, we price a ``(grouping, tile sizes)``
schedule with a roofline-style model whose terms are exactly the effects
the paper's evaluation discusses:

* **Compute** — per-stage iteration points (including redundant overlap
  computation) times the stage's per-point operation count, at the
  throughput of the machine's cores.  The achieved vector speedup depends
  on the *code generator*: PolyMage relies on compiler auto-vectorization,
  which fails for integer-heavy and data-dependent stages on the Opteron's
  g++ (Sec. 6.2), while Halide emits intrinsics and is unaffected.
* **Memory** — live-in/live-out traffic per tile times the tile count, at
  L3 bandwidth when the data could still be cache-resident and DRAM
  bandwidth otherwise, plus spill traffic when a tile's resident footprint
  exceeds the L2 slice available to its core.
* **Parallelism** — tiles are distributed over threads in waves; a
  non-multiple tile count leaves cores idle in the last wave (the
  "cleanup tiles" the cost model's w2 term minimises), and the run time
  takes the roofline max of compute and memory per group.

Absolute milliseconds are *not* calibrated to the paper's testbeds; the
model is built so that the relative behaviour — who wins, by what rough
factor, where the anomalies are — tracks the published tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..dsl.pipeline import Pipeline
from ..model.machine import Machine
from .metrics import GroupMetrics, group_metrics, stage_traits

if TYPE_CHECKING:  # pragma: no cover
    from ..fusion.grouping import Grouping

__all__ = ["estimate_runtime", "TimingBreakdown", "estimate_group_time"]

#: Fixed scheduling overhead per tile dispatch (seconds).
TILE_OVERHEAD_S = 2e-7
#: Fork/join overhead per fused group (seconds).
GROUP_OVERHEAD_S = 2e-5


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-group decomposition of the estimated run time."""

    group_names: List[str]
    compute_s: List[float]
    memory_s: List[float]
    imbalance: List[float]
    total_s: float


def _effective_bandwidth(
    machine: Machine, nthreads: int, working_set: float
) -> float:
    """Bandwidth feeding a group's live-in/live-out traffic: L3 bandwidth
    when the producer/consumer data plausibly stays in the last-level
    cache, DRAM otherwise; in both cases capped by what the active threads
    can draw."""
    if working_set <= 0.8 * machine.l3_cache:
        base = machine.l3_bandwidth
    else:
        base = machine.dram_bandwidth
    return min(base, nthreads * machine.core_bandwidth * 3.0)


def estimate_group_time(
    pipeline: Pipeline,
    metrics: GroupMetrics,
    machine: Machine,
    nthreads: int,
    codegen: str,
) -> Dict[str, float]:
    """Estimated execution time of one fused group (seconds), with its
    compute/memory/imbalance components."""
    # --- compute: per-stage, with codegen-dependent vectorization.  A
    # short innermost tile extent degrades prefetching and vectorization
    # (the reason Algorithm 2 pins INNERMOSTTILESIZE, Sec. 4.2).
    inner_factor = min(1.0, max(0.4, metrics.inner_extent / 64.0))
    compute_core_seconds = 0.0
    for stage, points in metrics.stage_points.items():
        tr = stage_traits(pipeline, stage)
        if codegen == "halide":
            veff = machine.halide_vec_efficiency(
                integer_heavy=tr.integer_heavy,
                data_dependent=tr.data_dependent,
            )
        elif codegen == "polymage":
            veff = machine.polymage_vec_efficiency(
                integer_heavy=tr.integer_heavy,
                data_dependent=tr.data_dependent,
            )
        else:
            raise ValueError(f"unknown codegen {codegen!r}")
        throughput = machine.ops_per_second(max(1.0, veff * inner_factor))
        compute_core_seconds += points * tr.ops_per_point / throughput

    # --- memory: live-in + live-out traffic, plus scratch traffic priced
    # by where the tile's working set resides (L1-sized tiles keep their
    # producer/consumer reuse in L1 — the effect Table 5 of the paper
    # measures).
    # Live-in traffic is capped at a few sweeps of the distinct external
    # data: data-dependent accesses (LUTs, grid slicing) read scattered
    # but bounded producers, and the footprint model's conservative
    # full-extent-per-tile estimate would otherwise charge each tile the
    # whole producer.
    livein_total = min(
        metrics.livein_bytes_total, 4.0 * metrics.livein_unique_bytes
    )
    traffic = livein_total + metrics.liveout_bytes_total
    working_set = traffic  # data streamed through the cache hierarchy
    bw = _effective_bandwidth(machine, nthreads, working_set)
    memory_s = traffic / bw

    resident = metrics.resident_bytes
    scratch_traffic = 2.0 * metrics.tile_footprint_bytes * metrics.n_tiles
    if resident <= machine.l1_cache:
        scratch_bw = nthreads * machine.l1_bandwidth_core
    elif resident <= machine.l2_cache:
        scratch_bw = nthreads * machine.l2_bandwidth_core
    else:
        # The producer-to-consumer reuse distance spills L2: the spilled
        # portion bounces to L3 on every pass; the rest stays at L2 speed.
        spill = resident - machine.l2_cache
        memory_s += (2.0 * spill * metrics.n_tiles) / min(
            machine.l3_bandwidth, nthreads * machine.core_bandwidth * 3.0
        )
        scratch_bw = nthreads * machine.l2_bandwidth_core
    memory_s += scratch_traffic / scratch_bw

    # --- parallel distribution of tiles over threads.
    n_tiles = max(1, metrics.n_tiles)
    waves = -(-n_tiles // nthreads)
    imbalance = (waves * nthreads) / n_tiles  # >= 1.0
    compute_s = compute_core_seconds / nthreads

    group_time = max(compute_s, memory_s) * imbalance
    group_time += n_tiles * TILE_OVERHEAD_S / nthreads + GROUP_OVERHEAD_S
    return {
        "compute_s": compute_s,
        "memory_s": memory_s,
        "imbalance": imbalance,
        "total_s": group_time,
    }


def estimate_runtime(
    pipeline: Pipeline,
    grouping: "Grouping",
    machine: Machine,
    nthreads: Optional[int] = None,
    codegen: str = "polymage",
    breakdown: bool = False,
):
    """Estimated wall-clock run time (seconds) of a grouping.

    ``codegen`` is ``"polymage"`` for PolyMage-generated C++ (compiler
    auto-vectorization) or ``"halide"`` for Halide-generated code
    (intrinsics).  With ``breakdown=True`` a :class:`TimingBreakdown` is
    returned instead of a float.
    """
    if nthreads is None:
        nthreads = machine.num_cores
    if nthreads < 1:
        raise ValueError("nthreads must be positive")

    names: List[str] = []
    comp: List[float] = []
    mem: List[float] = []
    imb: List[float] = []
    total = 0.0
    for members, tiles in zip(grouping.groups, grouping.tile_sizes):
        metrics = group_metrics(pipeline, members, tiles)
        parts = estimate_group_time(pipeline, metrics, machine, nthreads, codegen)
        names.append("+".join(sorted(s.name for s in members)))
        comp.append(parts["compute_s"])
        mem.append(parts["memory_s"])
        imb.append(parts["imbalance"])
        total += parts["total_s"]

    if breakdown:
        return TimingBreakdown(
            group_names=names,
            compute_s=comp,
            memory_s=mem,
            imbalance=imb,
            total_s=total,
        )
    return total
