"""Tile-size sensitivity sweeps.

Given a fused group, sweep a grid of tile configurations and collect, for
each, the model's view (overlap fraction, footprint, resident set,
estimated run time) — the data behind Table 5-style analyses for any
benchmark, and a convenient way to visualise how flat or sharp the tile
optimum is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..fusion.grouping import Grouping, GroupingStats
from ..model.machine import Machine
from ..poly.alignscale import compute_group_geometry
from ..poly.overlap import overlap_size, tile_volume
from .metrics import group_metrics
from .timing import estimate_group_time

__all__ = ["TilePoint", "sweep_tiles"]


@dataclass(frozen=True)
class TilePoint:
    """One swept tile configuration of a group."""

    tile_sizes: Tuple[int, ...]
    overlap_fraction: float
    tile_footprint_bytes: float
    resident_bytes: float
    n_tiles: int
    estimated_ms: float

    @property
    def fits_l1(self) -> bool:
        # filled in relative to the sweeping machine by sweep_tiles
        return self._fits_l1  # type: ignore[attr-defined]


def sweep_tiles(
    pipeline: Pipeline,
    members: Iterable[Function],
    machine: Machine,
    outer_sizes: Sequence[int] = (4, 5, 8, 16, 32, 64, 128),
    inner_sizes: Optional[Sequence[int]] = None,
    nthreads: Optional[int] = None,
    codegen: str = "polymage",
) -> List[TilePoint]:
    """Sweep tile sizes over the last two dimensions of a fused group.

    Outer dimensions beyond the last two are left untiled.  Returns one
    :class:`TilePoint` per configuration, sorted by estimated time.
    """
    member_set = frozenset(members)
    geom = compute_group_geometry(pipeline, member_set)
    if geom is None:
        raise ValueError("group has no overlap-tiling geometry")
    nthreads = nthreads or machine.num_cores
    extents = geom.grid_extents
    inner_sizes = inner_sizes or (
        machine.innermost_tile_size // 2,
        machine.innermost_tile_size,
    )

    points: List[TilePoint] = []
    seen = set()
    for outer in outer_sizes:
        for inner in inner_sizes:
            tiles = list(extents[:-2]) if geom.ndim >= 2 else []
            if geom.ndim >= 2:
                tiles += [min(outer, extents[-2]), min(inner, extents[-1])]
            else:
                tiles = [min(inner, extents[-1])]
            key = tuple(tiles)
            if key in seen:
                continue
            seen.add(key)
            metrics = group_metrics(pipeline, member_set, key)
            vol = tile_volume(geom, key)
            ovl = overlap_size(geom, key)
            parts = estimate_group_time(
                pipeline, metrics, machine, nthreads, codegen
            )
            point = TilePoint(
                tile_sizes=key,
                overlap_fraction=ovl / vol if vol else 0.0,
                tile_footprint_bytes=metrics.tile_footprint_bytes,
                resident_bytes=metrics.resident_bytes,
                n_tiles=metrics.n_tiles,
                estimated_ms=parts["total_s"] * 1e3,
            )
            object.__setattr__(
                point, "_fits_l1", metrics.resident_bytes <= machine.l1_cache
            )
            points.append(point)
    points.sort(key=lambda p: p.estimated_ms)
    return points
