"""Per-group execution metrics shared by the timing model, the Halide
auto-scheduler's benefit estimator, and the auto-tuner oracle.

For groups with a valid overlap-tiling geometry the metrics are exact
(tile counts, per-stage compute volumes including redundant overlap,
live-in/live-out transfer volumes, resident footprints).  Groups *without*
a geometry — e.g. Halide schedules that fuse a reduction with its
consumers, which PolyMage cannot express — use a fallback model on the
live-out stage's domain with no redundant computation, which matches how
Halide's ``compute_at`` realises such fusion (no overlapped tiles, the
reduction is computed per output tile region).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..dsl.expr import count_ops
from ..dsl.function import Function, Reduction
from ..dsl.image import Image
from ..dsl.pipeline import Pipeline
from ..poly.access import summarize_access
from ..poly.alignscale import compute_group_geometry
from ..poly.footprint import livein_tile_size, liveout_tile_size
from ..poly.overlap import stage_tile_extents

__all__ = ["StageTraits", "GroupMetrics", "stage_traits", "group_metrics",
           "stage_work_points", "stage_ops_per_point"]

#: Parallel row chunks assumed for a lone reduction's sweep.
REDUCTION_CHUNKS = 64


@dataclass(frozen=True)
class StageTraits:
    """Code-generation-relevant properties of one stage."""

    integer_heavy: bool
    data_dependent: bool
    ops_per_point: float


def stage_ops_per_point(stage: Function) -> float:
    """Arithmetic operations per iteration point of ``stage``."""
    return float(max(1, sum(count_ops(e) for e in stage.body_expressions())))


def stage_work_points(pipeline: Pipeline, stage: Function) -> int:
    """Iteration points that produce ``stage``'s output: its domain size,
    or the reduction-domain size for reductions (that's where the work
    is)."""
    if isinstance(stage, Reduction):
        size = 1
        for lo, hi in stage.resolve_reduction_domain(pipeline.env):
            size *= hi - lo + 1
        return size
    return pipeline.domain_size(stage)


def stage_traits(pipeline: Pipeline, stage: Function) -> StageTraits:
    """Traits controlling the vectorization behaviour of generated code."""
    data_dep = False
    for acc in pipeline.accesses(stage):
        if not summarize_access(acc, pipeline.env).affine:
            data_dep = True
            break
    if isinstance(stage, Reduction):
        data_dep = True  # scatter accumulation
    return StageTraits(
        integer_heavy=stage.scalar_type.is_integer,
        data_dependent=data_dep,
        ops_per_point=stage_ops_per_point(stage),
    )


@dataclass(frozen=True)
class GroupMetrics:
    """Execution metrics of one fused group under given tile sizes."""

    members: FrozenSet[Function]
    n_tiles: int
    #: per stage, total iteration points including redundant overlap
    stage_points: Dict[Function, float]
    #: bytes loaded from outside the group per tile
    livein_bytes_per_tile: float
    #: bytes stored to live-out buffers per tile
    liveout_bytes_per_tile: float
    #: bytes resident during one tile's execution (scratch + windows)
    tile_footprint_bytes: float
    #: largest single stage tile in bytes — the reuse distance between a
    #: producer's pass and its consumer's pass inside one tile, which is
    #: what must fit in a cache level for intra-tile locality (this is the
    #: quantity behind the L1/L2 hit patterns of the paper's Table 5)
    resident_bytes: float
    #: extent of the tile along the innermost dimension (vectorization /
    #: prefetching effectiveness, Sec. 4.2)
    inner_extent: int
    #: total bytes of *distinct* external data the group reads (each
    #: external producer counted once) — the cap on live-in traffic for
    #: data-dependent access patterns, which read scattered but bounded
    #: data rather than their producer's full extent per tile
    livein_unique_bytes: float
    has_geometry: bool

    @property
    def total_points(self) -> float:
        return sum(self.stage_points.values())

    @property
    def livein_bytes_total(self) -> float:
        return self.livein_bytes_per_tile * self.n_tiles

    @property
    def liveout_bytes_total(self) -> float:
        return self.liveout_bytes_per_tile * self.n_tiles


def _num_tiles(extents: Sequence[int], tiles: Sequence[int]) -> int:
    n = 1
    for e, t in zip(extents, tiles):
        n *= -(-e // max(1, t))
    return n


def _livein_unique(pipeline: Pipeline, member_set: FrozenSet[Function]) -> float:
    """Total bytes of distinct external producers read by the group."""
    total = 0.0
    seen = set()
    for s in member_set:
        for acc in pipeline.accesses(s):
            producer = acc.producer
            if isinstance(producer, Function) and producer in member_set:
                continue
            if producer.name in seen:
                continue
            seen.add(producer.name)
            if isinstance(producer, Image):
                size = 1
                for e in pipeline.image_shape(producer):
                    size *= e
            else:
                size = pipeline.domain_size(producer)
            total += size * producer.scalar_type.size
    return total


def group_metrics(
    pipeline: Pipeline,
    members: Iterable[Function],
    tile_sizes: Sequence[int],
) -> GroupMetrics:
    """Compute :class:`GroupMetrics` for a group with the given tile
    sizes (one per group-grid dimension)."""
    member_set = frozenset(members)

    # A lone reduction is never fused or overlap-tiled (PolyMage leaves
    # reductions unoptimised, Sec. 6.2), but its reduction loop is still
    # data-parallel over row chunks with privatised/atomic accumulation —
    # model it as a fixed number of independent chunks that sweep the
    # inputs once.
    if len(member_set) == 1 and isinstance(next(iter(member_set)), Reduction):
        stage = next(iter(member_set))
        chunks = REDUCTION_CHUNKS
        out_bytes = float(pipeline.domain_size(stage) * stage.scalar_type.size)
        livein = _livein_unique(pipeline, member_set)
        return GroupMetrics(
            members=member_set,
            n_tiles=chunks,
            stage_points={stage: float(stage_work_points(pipeline, stage))},
            livein_bytes_per_tile=livein / chunks,
            liveout_bytes_per_tile=out_bytes / chunks,
            tile_footprint_bytes=out_bytes / chunks,
            resident_bytes=0.0,  # streaming: rows, not a resident tile
            inner_extent=pipeline.domain_extents(stage)[-1],
            livein_unique_bytes=livein,
            has_geometry=False,
        )

    geom = compute_group_geometry(pipeline, member_set)

    if geom is not None:
        if len(tile_sizes) != geom.ndim:
            raise ValueError(
                f"group of {[s.name for s in member_set]} has {geom.ndim} "
                f"grid dims but got {len(tile_sizes)} tile sizes"
            )
        n_tiles = _num_tiles(geom.grid_extents, tile_sizes)
        stage_points: Dict[Function, float] = {}
        footprint = 0.0
        resident = 0.0
        for s in geom.stages:
            ext = stage_tile_extents(geom, tile_sizes, s)
            vol = 1.0
            for e in ext:
                vol *= e
            pts_per_tile = vol * float(geom.stage_density(s))
            stage_points[s] = pts_per_tile * n_tiles
            stage_bytes = pts_per_tile * s.scalar_type.size
            footprint += stage_bytes
            resident = max(resident, stage_bytes)
        inner = min(tile_sizes[-1], geom.grid_extents[-1])
        return GroupMetrics(
            members=member_set,
            n_tiles=n_tiles,
            stage_points=stage_points,
            livein_bytes_per_tile=livein_tile_size(pipeline, geom, tile_sizes),
            liveout_bytes_per_tile=liveout_tile_size(pipeline, geom, tile_sizes),
            tile_footprint_bytes=footprint,
            resident_bytes=resident,
            inner_extent=inner,
            livein_unique_bytes=_livein_unique(pipeline, member_set),
            has_geometry=True,
        )

    # ---- fallback: no overlap-tiling geometry (a Halide-style schedule
    # fusing a reduction or across constant-index channel mixes, realised
    # with ``compute_at``).  Tile on the live-out stage's domain and
    # propagate per-tile region extents backwards through the affine
    # accesses: producers compute the region their in-group consumers
    # need, so halos (and the recompute they imply at pyramid scale
    # changes) still accumulate even without a common constant-dependence
    # grid.
    liveouts = [
        s
        for s in member_set
        if pipeline.is_output(s)
        or any(c not in member_set for c in pipeline.consumers(s))
    ]
    ref = max(liveouts, key=lambda s: (s.ndim, pipeline.domain_size(s)))
    extents = pipeline.domain_extents(ref)
    if len(tile_sizes) != len(extents):
        raise ValueError(
            f"group of {sorted(s.name for s in member_set)} tiles on "
            f"{ref.name!r}'s {len(extents)}-d domain but got "
            f"{len(tile_sizes)} tile sizes"
        )
    n_tiles = _num_tiles(extents, tile_sizes)

    # Per-stage per-tile region extents (per stage dimension).
    members_topo = [s for s in pipeline.stages if s in member_set]
    region: Dict[Function, list] = {}
    for s in members_topo:
        dom = pipeline.domain_extents(s)
        if s in liveouts:
            base = [
                min(t, e)
                for t, e in zip(
                    tile_sizes[len(tile_sizes) - s.ndim:], dom[-s.ndim:]
                )
            ]
            # leading dims not covered by the (trailing) tile spec
            base = list(dom[: s.ndim - len(base)]) + base
        else:
            base = [1] * s.ndim
        region[s] = base
    # Distinct constant indices read along a producer dimension (channel
    # selects) union into the needed region.
    const_reads: Dict[Tuple[str, int], set] = {}
    for consumer in reversed(members_topo):
        var_dim = {v.name: j for j, v in enumerate(consumer.variables)}
        if isinstance(consumer, Reduction):
            # the reduction sweeps its whole reduction domain per tile
            # region of its output — treat reads as full sweeps below.
            var_dim.update({v.name: None for v in consumer.reduction_variables})
        c_region = region[consumer]
        for acc in pipeline.accesses(consumer):
            producer = acc.producer
            if not (isinstance(producer, Function) and producer in member_set):
                continue
            summary = summarize_access(acc, pipeline.env)
            p_dom = pipeline.domain_extents(producer)
            p_region = region[producer]
            for j, dim in enumerate(summary.dims):
                full = p_dom[j]
                if not dim.affine:
                    need = full
                elif dim.var is None:
                    seen = const_reads.setdefault((producer.name, j), set())
                    seen.add(dim.off // dim.den)
                    need = len(seen)
                else:
                    k = var_dim.get(dim.var)
                    if k is None:
                        need = full
                    else:
                        need = int(c_region[k] * dim.num / dim.den) + 2
                p_region[j] = min(full, max(p_region[j], need))

    stage_points = {}
    footprint = 0.0
    for s in members_topo:
        per_tile = 1.0
        for e in region[s]:
            per_tile *= e
        if isinstance(s, Reduction):
            per_tile = float(stage_work_points(pipeline, s)) / n_tiles
        stage_points[s] = per_tile * n_tiles
        footprint += per_tile * s.scalar_type.size

    # Live-ins: external producers, tile-proportional share.
    livein_unique = _livein_unique(pipeline, member_set)
    livein = livein_unique / n_tiles
    liveout = sum(
        pipeline.domain_size(s) * s.scalar_type.size / n_tiles
        for s in liveouts
    )
    resident = max(
        stage_points[s] / n_tiles * s.scalar_type.size for s in member_set
    )
    return GroupMetrics(
        members=member_set,
        n_tiles=n_tiles,
        stage_points=stage_points,
        livein_bytes_per_tile=livein,
        liveout_bytes_per_tile=liveout,
        tile_footprint_bytes=footprint,
        resident_bytes=resident,
        inner_extent=min(tile_sizes[-1], extents[-1]),
        livein_unique_bytes=livein_unique,
        has_geometry=False,
    )
