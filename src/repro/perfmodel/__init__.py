"""Performance substrate: analytic timing model and cache simulator —
the stand-ins for the paper's Xeon/Opteron testbeds."""

from .metrics import (
    GroupMetrics,
    StageTraits,
    group_metrics,
    stage_ops_per_point,
    stage_traits,
    stage_work_points,
)
from .sweep import TilePoint, sweep_tiles
from .timing import TimingBreakdown, estimate_group_time, estimate_runtime

__all__ = [
    "GroupMetrics",
    "StageTraits",
    "group_metrics",
    "stage_traits",
    "stage_ops_per_point",
    "stage_work_points",
    "estimate_runtime",
    "sweep_tiles",
    "TilePoint",
    "estimate_group_time",
    "TimingBreakdown",
]
