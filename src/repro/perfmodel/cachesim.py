"""Set-associative LRU cache simulator — the stand-in for the paper's
hardware performance counters (Table 5).

The paper reports L1-hit / L2-hit / L2-miss fractions for Unsharp Mask
under four tile configurations, measured with hardware counters on the
Xeon.  We reproduce those fractions by simulating the L1/L2 hierarchy over
the *address stream of fused tile execution*: per tile, each member stage
sweeps its expanded region row by row, reading its producers' rows (with
stencil offsets) and writing its own, with intra-group producers living in
per-tile scratch buffers (reused across tiles, as PolyMage's generated
code does) and live-ins/live-outs in full-size row-major arrays.

Streams are generated at cache-line granularity with element-level
weighting: a line that misses still serves the remaining
``elements_per_line - 1`` accesses from L1, which is what the paper's
counter-based fractions reflect.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..dsl.function import Function
from ..dsl.image import Image
from ..dsl.pipeline import Pipeline
from ..model.machine import Machine
from ..poly.access import summarize_access
from ..poly.alignscale import compute_group_geometry
from ..runtime.executor import _stage_region

__all__ = ["SetAssocCache", "CacheHierarchy", "CacheStats", "simulate_group_cache"]


class SetAssocCache:
    """One set-associative LRU cache level, tracked at line granularity."""

    def __init__(self, size: int, line: int, assoc: int, name: str = ""):
        if size % (line * assoc):
            raise ValueError("size must be a multiple of line * assoc")
        self.line = line
        self.assoc = assoc
        self.num_sets = size // (line * assoc)
        self.name = name
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def access(self, line_addr: int) -> bool:
        """Access one cache line; returns True on hit.  Misses fill the
        line (evicting LRU)."""
        s = self._sets[line_addr % self.num_sets]
        if line_addr in s:
            s.move_to_end(line_addr)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line_addr] = True
        return False


@dataclass
class CacheStats:
    """Element-weighted hit/miss fractions over all cache accesses."""

    accesses: int
    l1_hits: int
    l2_hits: int
    l2_misses: int

    @property
    def l1_hit_frac(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def l2_hit_frac(self) -> float:
        return self.l2_hits / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_frac(self) -> float:
        return self.l2_misses / self.accesses if self.accesses else 0.0

    def row(self) -> Tuple[float, float, float]:
        """(L1 HIT %, L2 HIT %, L2 MISS %) — the Table 5 columns."""
        return (
            100.0 * self.l1_hit_frac,
            100.0 * self.l2_hit_frac,
            100.0 * self.l2_miss_frac,
        )


class CacheHierarchy:
    """Two-level inclusive L1/L2 hierarchy with element weighting."""

    def __init__(self, machine: Machine):
        self.l1 = SetAssocCache(
            machine.l1_cache, machine.cache_line, machine.l1_assoc, "L1"
        )
        self.l2 = SetAssocCache(
            machine.l2_cache, machine.cache_line, machine.l2_assoc, "L2"
        )
        self.line = machine.cache_line
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l2_misses = 0

    def access_line(self, line_addr: int, elements: int) -> None:
        """One line touched by ``elements`` consecutive element accesses:
        the first access classifies the line; the rest hit L1."""
        self.accesses += elements
        if self.l1.access(line_addr):
            self.l1_hits += elements
        elif self.l2.access(line_addr):
            self.l2_hits += 1
            self.l1_hits += elements - 1
        else:
            self.l2_misses += 1
            self.l1_hits += elements - 1

    def stats(self) -> CacheStats:
        return CacheStats(
            accesses=self.accesses,
            l1_hits=self.l1_hits,
            l2_hits=self.l2_hits,
            l2_misses=self.l2_misses,
        )


def _row_stream(
    hierarchy: CacheHierarchy,
    base: int,
    start_elem: int,
    n_elems: int,
    elem_size: int,
) -> None:
    """Stream ``n_elems`` consecutive elements starting at element index
    ``start_elem`` of the buffer at ``base``."""
    if n_elems <= 0:
        return
    line = hierarchy.line
    addr0 = base + start_elem * elem_size
    addr1 = base + (start_elem + n_elems) * elem_size
    first_line = addr0 // line
    last_line = (addr1 - 1) // line
    per_line = line // elem_size
    n_lines = last_line - first_line + 1
    remaining = n_elems
    for la in range(first_line, last_line + 1):
        e = min(per_line, remaining) if n_lines > 1 else remaining
        hierarchy.access_line(la, max(1, min(e, remaining)))
        remaining -= e
        if remaining <= 0:
            break


def simulate_group_cache(
    pipeline: Pipeline,
    members: Iterable[Function],
    tile_sizes: Sequence[int],
    machine: Machine,
    max_tiles: int = 12,
    warmup_tiles: int = 1,
) -> CacheStats:
    """Simulate the cache behaviour of overlapped-tile execution of a
    fused group and return element-weighted hit fractions.

    Only groups with an overlap-tiling geometry are supported (that is
    what the paper measures).  ``max_tiles`` consecutive tiles are
    simulated after ``warmup_tiles`` whose accesses are excluded from the
    statistics.
    """
    member_set = frozenset(members)
    geom = compute_group_geometry(pipeline, member_set)
    if geom is None:
        raise ValueError("group has no overlap-tiling geometry")
    if len(tile_sizes) != geom.ndim:
        raise ValueError(f"need {geom.ndim} tile sizes")
    radii = geom.expansion_radii()

    # Address-space layout: full buffers (images, external producers,
    # live-outs) spaced far apart; per-tile scratch in a compact reused
    # window (matching generated code, where scratch is stack-allocated).
    base_of: Dict[str, int] = {}
    next_base = 1 << 30
    for img in pipeline.images:
        size = 1
        for e in pipeline.image_shape(img):
            size *= e
        base_of[img.name] = next_base
        next_base += (size * img.scalar_type.size + (1 << 20)) & ~4095
    for s in pipeline.stages:
        if s in member_set:
            continue
        base_of[s.name] = next_base
        next_base += (
            pipeline.domain_size(s) * s.scalar_type.size + (1 << 20)
        ) & ~4095
    liveouts = set(geom.liveouts)
    for s in geom.liveouts:
        base_of[s.name] = next_base
        next_base += (
            pipeline.domain_size(s) * s.scalar_type.size + (1 << 20)
        ) & ~4095

    hierarchy = CacheHierarchy(machine)

    dim_ranges = [
        range(lo, hi + 1, tile_sizes[g])
        for g, (lo, hi) in enumerate(geom.grid_bounds)
    ]
    tiles = list(itertools.product(*dim_ranges))[: warmup_tiles + max_tiles]

    # Full-buffer row lengths (innermost extent) per producer.
    def full_rowlen(producer) -> int:
        if isinstance(producer, Image):
            return pipeline.image_shape(producer)[-1]
        return pipeline.domain_extents(producer)[-1]

    for t_index, tile_lo in enumerate(tiles):
        if t_index == warmup_tiles:
            # Reset statistics after warm-up; keep cache contents.
            hierarchy.accesses = 0
            hierarchy.l1_hits = 0
            hierarchy.l2_hits = 0
            hierarchy.l2_misses = 0

        scratch_base: Dict[str, int] = {}
        scratch_rows: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        next_scratch = 1 << 20  # reused every tile
        for stage in geom.stages:
            bounds = _stage_region(
                geom, stage, pipeline, tile_lo, tile_sizes, radii, True
            )
            if bounds is None:
                continue
            shape = tuple(hi - lo + 1 for lo, hi in bounds)
            scratch_base[stage.name] = next_scratch
            scratch_rows[stage.name] = tuple(bounds)
            size = stage.scalar_type.size
            for e in shape:
                size *= e
            next_scratch += (size + 255) & ~63

            # Sweep the region row by row (all dims but the innermost).
            inner_len = shape[-1]
            outer_shape = shape[:-1]
            n_rows = 1
            for e in outer_shape:
                n_rows *= e
            elem = stage.scalar_type.size

            accesses = pipeline.accesses(stage)
            summaries = [summarize_access(a, pipeline.env) for a in accesses]

            for row in range(n_rows):
                # Reads: one producer row per access (stencil offsets along
                # the row dimension fold into neighbouring rows that the
                # LRU keeps hot; we stream the base row per access).
                for acc, summary in zip(accesses, summaries):
                    producer = acc.producer
                    pname = producer.name
                    in_group = (
                        isinstance(producer, Function) and producer in member_set
                    )
                    if in_group:
                        p_bounds = scratch_rows.get(pname)
                        if p_bounds is None:
                            continue
                        p_inner = p_bounds[-1][1] - p_bounds[-1][0] + 1
                        p_rows = 1
                        for lo, hi in p_bounds[:-1]:
                            p_rows *= hi - lo + 1
                        p_base = scratch_base[pname]
                        p_elem = producer.scalar_type.size
                        p_row = min(row, p_rows - 1)
                        _row_stream(
                            hierarchy, p_base, p_row * p_inner, p_inner, p_elem
                        )
                    else:
                        p_base = base_of[pname]
                        p_inner = full_rowlen(producer)
                        p_elem = producer.scalar_type.size
                        # Map the stage's row to a producer row via the
                        # access coefficient on the row dimension.
                        dim = summary.dims[-2] if len(summary.dims) >= 2 else None
                        coeff = (
                            float(dim.coeff)
                            if dim is not None and dim.affine and dim.var
                            else 1.0
                        )
                        outer_pos = row % (outer_shape[-1] if outer_shape else 1)
                        p_row = int(
                            (bounds[-2][0] + outer_pos) * coeff
                        ) if len(bounds) >= 2 else 0
                        read_len = int(inner_len * abs(
                            float(summary.dims[-1].coeff)
                            if summary.dims[-1].affine and summary.dims[-1].var
                            else 1.0
                        )) + 2
                        _row_stream(
                            hierarchy,
                            p_base,
                            p_row * p_inner + bounds[-1][0],
                            min(read_len, p_inner),
                            p_elem,
                        )
                # Write the stage's own row (scratch).
                _row_stream(
                    hierarchy,
                    scratch_base[stage.name],
                    row * inner_len,
                    inner_len,
                    elem,
                )
            # Live-outs additionally store their base region to the full
            # buffer.
            if stage in liveouts:
                base_bounds = _stage_region(
                    geom, stage, pipeline, tile_lo, tile_sizes, radii, False
                )
                if base_bounds is not None:
                    out_inner = full_rowlen(stage)
                    rows = 1
                    for lo, hi in base_bounds[:-1]:
                        rows *= hi - lo + 1
                    row_len = base_bounds[-1][1] - base_bounds[-1][0] + 1
                    for row in range(rows):
                        _row_stream(
                            hierarchy,
                            base_of[stage.name],
                            row * out_inner + base_bounds[-1][0],
                            row_len,
                            stage.scalar_type.size,
                        )

    return hierarchy.stats()
