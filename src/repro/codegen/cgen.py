"""C++/OpenMP code generation for scheduled pipelines.

PolyMage is, at the end of the day, a C++ code generator: Fig. 3 of the
paper shows the blur pipeline's generated loop nest — fused tile-space
loops under ``#pragma omp parallel for``, per-tile scratch buffers for
intermediates, and the stages' intra-tile loops run back-to-back inside
each trapezoid tile.  This module emits exactly that shape for any
:class:`~repro.fusion.grouping.Grouping`:

* one ``extern "C" void pipeline_run(...)`` taking the input images and
  the pipeline outputs as flat row-major arrays,
* per fused group, tile loops over the group's scaled grid with the
  first two dimensions collapsed, per-stage region bounds computed with
  the same floor/ceil arithmetic the NumPy executor uses, scratch
  buffers folded into slots by the storage optimizer
  (:mod:`repro.runtime.storage`), and live-outs copied from scratch to
  their full buffers tile by tile,
* reductions and geometry-less groups as untiled loop nests.

The generated code is self-contained (no dependency on this package) and
is validated in the test suite by compiling it with g++ and comparing its
output against the interpreter bit-for-bit (integers) or to float
tolerance.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.entities import Case
from ..dsl.function import Function, Op, Reduction
from ..dsl.image import Image
from ..dsl.pipeline import Pipeline
from ..fusion.grouping import Grouping
from ..poly.alignscale import GroupGeometry, compute_group_geometry
from ..runtime.storage import plan_storage
from .cexpr import CBuffer, ExprPrinter, RUNTIME_HELPERS, ctype_of

__all__ = ["generate_cpp", "generate_main"]


class _Emitter:
    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def open(self, text: str) -> None:
        self.line(text)
        self.depth += 1

    def close(self, text: str = "}") -> None:
        self.depth -= 1
        self.line(text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _ceildiv(a: str, b: int) -> str:
    return f"r_floordiv(({a}) + {b - 1}, {b})"


def _stage_bound_exprs(
    geom: GroupGeometry,
    stage: Function,
    pipeline: Pipeline,
    tile_vars: Sequence[str],
    tile_sizes: Sequence[int],
    radii,
    expand: bool,
) -> List[Tuple[str, str]]:
    """C expressions for the stage's per-dimension (lo, hi) in one tile —
    mirrors ``repro.runtime.executor._stage_region``."""
    dom = pipeline.domain(stage)
    out = []
    for j, g in enumerate(geom.align[stage]):
        left, right = radii[stage][g] if expand else (0, 0)
        rlo = f"({tile_vars[g]} - {left})"
        rhi_plus1 = f"({tile_vars[g]} + {tile_sizes[g] + right})"
        s = geom.scale[stage][j]
        num, den = s.numerator, s.denominator
        # points p with p*s in [rlo, rhi+1): lo = ceil(rlo/s) (floor when
        # expanding), hi = ceil((rhi+1)/s) - 1
        lo_ceil = _ceildiv(f"({rlo}) * {den}", num)
        if expand:
            lo = f"r_floordiv(({rlo}) * {den}, {num})"
        else:
            lo = lo_ceil
        hi = f"{_ceildiv(f'({rhi_plus1}) * {den}', num)} - 1"
        out.append(
            (
                f"r_max({lo}, {dom[j][0]})",
                f"r_min({hi}, {dom[j][1]})",
            )
        )
    return out


def _max_scratch_extents(
    geom: GroupGeometry,
    stage: Function,
    pipeline: Pipeline,
    tile_sizes: Sequence[int],
    radii,
) -> List[int]:
    """Safe upper bound on a stage's per-tile region extents."""
    dom_ext = pipeline.domain_extents(stage)
    out = []
    for j, g in enumerate(geom.align[stage]):
        left, right = radii[stage][g]
        s = geom.scale[stage][j]
        span = tile_sizes[g] + left + right + 1
        ext = int(math.ceil(span * s.denominator / s.numerator)) + 2
        out.append(min(dom_ext[j], ext))
    return out


def _emit_stage_body(
    em: _Emitter,
    printer: ExprPrinter,
    stage: Function,
    bounds_vars: List[Tuple[str, str]],
    out_buf: CBuffer,
) -> None:
    """The stage's loop nest, storing into ``out_buf``."""
    loop_vars = [v.name for v in stage.variables]
    for j, v in enumerate(loop_vars):
        lo, hi = bounds_vars[j]
        pragma = "" if j < stage.ndim - 1 else "#pragma GCC ivdep"
        if pragma:
            em.line(pragma)
        em.open(f"for (long {v} = {lo}; {v} <= {hi}; ++{v}) {{")
    value = _defn_expr(printer, stage)
    ctype = ctype_of(stage.scalar_type)
    em.line(f"{out_buf.name}[{out_buf.index_expr(loop_vars)}] = ({ctype})({value});")
    for _ in loop_vars:
        em.close()


def _defn_expr(printer: ExprPrinter, stage: Function) -> str:
    """The stage body as a single (possibly nested-ternary) expression."""
    cases = []
    default = "0.0"
    for entry in stage.defn:
        if isinstance(entry, Case):
            cases.append(
                (printer.cond(entry.condition), printer.expr(entry.expression))
            )
        else:
            default = printer.expr(entry)
    expr = default
    for cond, val in reversed(cases):
        expr = f"({cond} ? {val} : {expr})"
    return expr


def _emit_reduction(
    em: _Emitter,
    printer: ExprPrinter,
    pipeline: Pipeline,
    stage: Reduction,
    out_buf: CBuffer,
) -> None:
    dom = pipeline.domain(stage)
    size = pipeline.domain_size(stage)
    ctype = ctype_of(stage.scalar_type)
    em.line(f"// reduction {stage.name} (serial, as PolyMage leaves them)")
    em.open("{")
    em.line(
        f"for (long __i = 0; __i < {size}; ++__i) "
        f"{out_buf.name}[__i] = ({ctype})({float(stage.default)!r});"
    )
    rdom = stage.resolve_reduction_domain(pipeline.env)
    for v, (lo, hi) in zip(stage.reduction_variables, rdom):
        em.open(f"for (long {v.name} = {lo}; {v.name} <= {hi}; ++{v.name}) {{")
    for ri, rule in enumerate(stage.defn):
        em.open("{")
        idx = [printer.int_expr(i) for i in rule.indices]
        guards = []
        names = []
        for d, ix in enumerate(idx):
            name = f"__t{d}"
            em.line(f"long {name} = {ix};")
            guards.append(
                f"{name} >= {dom[d][0]} && {name} <= {dom[d][1]}"
            )
            names.append(f"({name} - {dom[d][0]})")
        strides = []
        for d in range(len(dom)):
            stride = 1
            for k in range(d + 1, len(dom)):
                stride *= dom[k][1] - dom[k][0] + 1
            strides.append(stride)
        flat = " + ".join(
            f"{n} * {s}" if s != 1 else n for n, s in zip(names, strides)
        )
        value = printer.expr(rule.value)
        em.open(f"if ({' && '.join(guards)}) {{")
        if rule.op == Op.Sum:
            em.line(f"{out_buf.name}[{flat}] += ({ctype})({value});")
        elif rule.op == Op.Max:
            em.line(
                f"{out_buf.name}[{flat}] = std::max({out_buf.name}[{flat}], "
                f"({ctype})({value}));"
            )
        else:
            em.line(
                f"{out_buf.name}[{flat}] = std::min({out_buf.name}[{flat}], "
                f"({ctype})({value}));"
            )
        em.close()  # guard
        em.close()  # rule scope
    for _ in rdom:
        em.close()
    em.close()


def generate_cpp(
    pipeline: Pipeline,
    grouping: Grouping,
    fold_storage: bool = True,
    function_name: str = "pipeline_run",
) -> str:
    """Generate a self-contained C++ translation unit for ``grouping``.

    The emitted entry point is::

        extern "C" void <function_name>(const T0* <image0>, ...,
                                        T* out_<liveout0>, ...);

    taking every input image and every pipeline output as flat row-major
    arrays at the sizes baked in from the pipeline's parameter binding.
    With ``fold_storage`` the per-tile scratch buffers of each group are
    folded into slots by liveness (only applied when the group's stages
    share one element type).
    """
    if grouping.pipeline is not pipeline:
        raise ValueError("grouping was built for a different pipeline")

    em = _Emitter()
    em.line("// Generated by repro.codegen — PolyMage-style fused,")
    em.line(f"// overlap-tiled C++ for pipeline '{pipeline.name}'.")
    em.line("#include <algorithm>")
    em.line("#include <cmath>")
    em.line("#include <cstring>")
    em.line("#include <vector>")
    em.line("#ifdef _OPENMP")
    em.line("#include <omp.h>")
    em.line("#endif")
    em.line("")
    for helper in RUNTIME_HELPERS.splitlines():
        em.line(helper)
    em.line("")

    # --- global buffers: images + pipeline outputs are parameters;
    # cross-group intermediates are locals.
    buffers: Dict[str, CBuffer] = {}
    params: List[str] = []
    for img in pipeline.images:
        shape = pipeline.image_shape(img)
        buffers[img.name] = CBuffer(img.name, [0] * len(shape), list(shape))
        params.append(f"const {ctype_of(img.scalar_type)}* {img.name}")
    out_names = []
    for out in pipeline.outputs:
        dom = pipeline.domain(out)
        name = f"out_{out.name}"
        buffers[out.name] = CBuffer(
            name, [lo for lo, _ in dom], [hi - lo + 1 for lo, hi in dom]
        )
        params.append(f"{ctype_of(out.scalar_type)}* {name}")
        out_names.append(out.name)

    em.line(f'extern "C" void {function_name}({", ".join(params)})')
    em.open("{")

    # Local full buffers for group live-outs that are not pipeline outputs.
    for members in grouping.groups:
        geom = compute_group_geometry(pipeline, members)
        liveouts = geom.liveouts if geom is not None else [
            s for s in members
            if pipeline.is_output(s)
            or any(c not in members for c in pipeline.consumers(s))
        ]
        for s in members:
            needs_full = s in liveouts or geom is None or (
                len(members) == 1 and isinstance(s, Reduction)
            )
            if not needs_full or s.name in buffers:
                continue
            dom = pipeline.domain(s)
            size = pipeline.domain_size(s)
            ctype = ctype_of(s.scalar_type)
            em.line(
                f"std::vector<{ctype}> __full_{s.name}({size});"
            )
            buffers[s.name] = CBuffer(
                f"__full_{s.name}.data()",
                [lo for lo, _ in dom],
                [hi - lo + 1 for lo, hi in dom],
            )
    em.line("")

    printer_global = ExprPrinter(buffers, pipeline.env)

    for gi, (members, tiles) in enumerate(
        zip(grouping.groups, grouping.tile_sizes)
    ):
        names = "+".join(sorted(s.name for s in members))
        geom = compute_group_geometry(pipeline, members)
        singleton_reduction = len(members) == 1 and isinstance(
            next(iter(members)), Reduction
        )
        em.line(f"// ---- group {gi}: {names}")
        if geom is None or singleton_reduction:
            _emit_untiled_group(em, pipeline, members, buffers, printer_global)
            continue
        _emit_tiled_group(
            em, pipeline, geom, tiles, buffers, fold_storage
        )
        em.line("")

    em.close("}")
    return em.text()


def _emit_untiled_group(em, pipeline, members, buffers, printer) -> None:
    """Geometry-less groups and lone reductions: full-domain loop nests in
    topological order (intermediates get local full buffers)."""
    member_list = [s for s in pipeline.stages if s in members]
    for s in member_list:
        if s.name not in buffers:
            dom = pipeline.domain(s)
            ctype = ctype_of(s.scalar_type)
            em.line(
                f"std::vector<{ctype}> __full_{s.name}({pipeline.domain_size(s)});"
            )
            buffers[s.name] = CBuffer(
                f"__full_{s.name}.data()",
                [lo for lo, _ in dom],
                [hi - lo + 1 for lo, hi in dom],
            )
    for s in member_list:
        if isinstance(s, Reduction):
            _emit_reduction(em, printer, pipeline, s, buffers[s.name])
            continue
        dom = pipeline.domain(s)
        em.line(f"// stage {s.name} (untiled)")
        em.open("{")
        if dom[0][1] - dom[0][0] > 0:
            em.line("#ifdef _OPENMP")
            em.line("#pragma omp parallel for schedule(static)")
            em.line("#endif")
        bounds = [(str(lo), str(hi)) for lo, hi in dom]
        _emit_stage_body(em, printer, s, bounds, buffers[s.name])
        em.close()
    em.line("")


def _emit_tiled_group(
    em, pipeline, geom: GroupGeometry, tiles, buffers, fold_storage
) -> None:
    radii = geom.expansion_radii()
    tile_vars = [f"__t{g}" for g in range(geom.ndim)]

    # Storage plan: fold scratch into slots when element types agree.
    dtypes = {s.scalar_type.name for s in geom.stages}
    plan = None
    if fold_storage and len(dtypes) == 1:
        plan = plan_storage(pipeline, geom, tiles)

    max_ext = {
        s: _max_scratch_extents(geom, s, pipeline, tiles, radii)
        for s in geom.stages
    }

    collapse = min(2, geom.ndim)
    em.line("#ifdef _OPENMP")
    em.line(
        f"#pragma omp parallel for schedule(static) collapse({collapse})"
    )
    em.line("#endif")
    for g in range(geom.ndim):
        lo, hi = geom.grid_bounds[g]
        em.open(
            f"for (long {tile_vars[g]} = {lo}; {tile_vars[g]} <= {hi}; "
            f"{tile_vars[g]} += {tiles[g]}) {{"
        )

    # Scratch declarations.
    if plan is not None:
        elem = ctype_of(next(iter(geom.stages)).scalar_type)
        slot_elems = [0] * plan.num_slots
        for s in geom.stages:
            size = 1
            for e in max_ext[s]:
                size *= e
            slot = plan.slot_of[s]
            slot_elems[slot] = max(slot_elems[slot], size)
        for i, size in enumerate(slot_elems):
            em.line(f"std::vector<{elem}> __slot{i}({size});")
        scratch_name = {
            s: f"__slot{plan.slot_of[s]}.data()" for s in geom.stages
        }
    else:
        for s in geom.stages:
            size = 1
            for e in max_ext[s]:
                size *= e
            em.line(
                f"std::vector<{ctype_of(s.scalar_type)}> __buf_{s.name}({size});"
            )
        scratch_name = {s: f"__buf_{s.name}.data()" for s in geom.stages}

    # Per-stage regions, bodies, live-out copies.
    local_buffers = dict(buffers)
    for s in geom.stages:
        exprs = _stage_bound_exprs(
            geom, s, pipeline, tile_vars, tiles, radii, expand=True
        )
        lo_names, hi_names = [], []
        for j, (lo, hi) in enumerate(exprs):
            em.line(f"long {s.name}_lo{j} = {lo};")
            em.line(f"long {s.name}_hi{j} = {hi};")
            lo_names.append(f"{s.name}_lo{j}")
            hi_names.append(f"{s.name}_hi{j}")
        empty = " || ".join(
            f"{l} > {h}" for l, h in zip(lo_names, hi_names)
        )
        local_buffers[s.name] = CBuffer(
            scratch_name[s],
            lo_names,
            [f"{h} - {l} + 1" for l, h in zip(lo_names, hi_names)],
        )
        printer = ExprPrinter(local_buffers, pipeline.env)
        em.open(f"if (!({empty})) {{")
        em.line(f"// stage {s.name}")
        _emit_stage_body(
            em, printer, s, list(zip(lo_names, hi_names)),
            local_buffers[s.name],
        )
        em.close()

        if s in geom.liveouts:
            base = _stage_bound_exprs(
                geom, s, pipeline, tile_vars, tiles, radii, expand=False
            )
            blo, bhi = [], []
            for j, (lo, hi) in enumerate(base):
                em.line(f"long {s.name}_blo{j} = {lo};")
                em.line(f"long {s.name}_bhi{j} = {hi};")
                blo.append(f"{s.name}_blo{j}")
                bhi.append(f"{s.name}_bhi{j}")
            em.line(f"// copy {s.name} base region to its full buffer")
            copy_vars = [f"__c{j}" for j in range(s.ndim)]
            for j, v in enumerate(copy_vars):
                em.open(
                    f"for (long {v} = {blo[j]}; {v} <= {bhi[j]}; ++{v}) {{"
                )
            dst = buffers[s.name]
            src = local_buffers[s.name]
            em.line(
                f"{dst.name}[{dst.index_expr(copy_vars)}] = "
                f"{src.name}[{src.index_expr(copy_vars)}];"
            )
            for _ in copy_vars:
                em.close()

    for _ in range(geom.ndim):
        em.close()


def generate_main(
    pipeline: Pipeline,
    function_name: str = "pipeline_run",
    repeats: int = 1,
) -> str:
    """A ``main()`` harness for the generated code: reads each input image
    from a raw binary file given on the command line (in pipeline image
    order), runs the pipeline, and writes each output to the remaining
    paths — the hook the compile-and-compare tests use.

    With ``repeats > 1`` the pipeline is run that many times and the
    minimum wall-clock milliseconds are printed to stdout (the paper's
    measurement protocol reports minima of averaged samples) — the hook
    the native-validation benchmark uses.
    """
    em = _Emitter()
    em.line("#include <cstdio>")
    em.line("#include <cstdlib>")
    if repeats > 1:
        em.line("#include <chrono>")
    em.line("")
    sig_parts = []
    for img in pipeline.images:
        sig_parts.append(f"const {ctype_of(img.scalar_type)}*")
    for out in pipeline.outputs:
        sig_parts.append(f"{ctype_of(out.scalar_type)}*")
    em.line(f'extern "C" void {function_name}({", ".join(sig_parts)});')
    em.line("")
    em.open("int main(int argc, char** argv) {")
    n_in = len(pipeline.images)
    n_out = len(pipeline.outputs)
    em.line(f"if (argc != 1 + {n_in} + {n_out}) return 2;")
    args = []
    for i, img in enumerate(pipeline.images):
        size = 1
        for e in pipeline.image_shape(img):
            size *= e
        ctype = ctype_of(img.scalar_type)
        em.line(f"{ctype}* in{i} = ({ctype}*)malloc({size}ul * sizeof({ctype}));")
        em.open(f"{{ FILE* f = fopen(argv[{1 + i}], \"rb\");")
        em.line("if (!f) return 3;")
        em.line(f"if (fread(in{i}, sizeof({ctype}), {size}, f) != {size}) return 4;")
        em.line("fclose(f); }")
        em.depth -= 1
        args.append(f"in{i}")
    for i, out in enumerate(pipeline.outputs):
        size = pipeline.domain_size(out)
        ctype = ctype_of(out.scalar_type)
        em.line(f"{ctype}* out{i} = ({ctype}*)calloc({size}ul, sizeof({ctype}));")
        args.append(f"out{i}")
    if repeats > 1:
        em.line(f"{function_name}({', '.join(args)});  // warm-up")
        em.line("double best_ms = 1e300;")
        em.open(f"for (int rep = 0; rep < {repeats}; ++rep) {{")
        em.line("auto t0 = std::chrono::steady_clock::now();")
        em.line(f"{function_name}({', '.join(args)});")
        em.line("auto t1 = std::chrono::steady_clock::now();")
        em.line(
            "double ms = std::chrono::duration<double, std::milli>"
            "(t1 - t0).count();"
        )
        em.line("if (ms < best_ms) best_ms = ms;")
        em.close()
        em.line('printf("%.4f\\n", best_ms);')
    else:
        em.line(f"{function_name}({', '.join(args)});")
    for i, out in enumerate(pipeline.outputs):
        size = pipeline.domain_size(out)
        ctype = ctype_of(out.scalar_type)
        em.open(f"{{ FILE* f = fopen(argv[{1 + n_in + i}], \"wb\");")
        em.line("if (!f) return 5;")
        em.line(f"fwrite(out{i}, sizeof({ctype}), {size}, f);")
        em.line("fclose(f); }")
        em.depth -= 1
    em.line("return 0;")
    em.close()
    return em.text()
