"""Expression and condition printing for the C++ code generator.

The generated code evaluates arithmetic in ``double`` (with results cast
to the stage's element type on store), which matches the NumPy
interpreter's promotion semantics closely enough for bit-level agreement
on integer pipelines and float tolerance agreement on float pipelines:

* ``//`` becomes a floor-division helper (C++ ``/`` truncates),
* ``%`` becomes a positive-modulo helper (NumPy's convention),
* ``Cast(Int, e)`` truncates toward zero, like ``ndarray.astype``,
* access indices are clamped into the producer's stored region, exactly
  as :meth:`repro.runtime.buffers.Buffer.gather` clips.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

from ..dsl.entities import Condition, Parameter, Variable
from ..dsl.expr import (
    Access,
    BinOp,
    Cast,
    Const,
    Expr,
    MathCall,
    Select,
    UnaryOp,
)
from ..dsl.types import ScalarType

__all__ = ["CBuffer", "ExprPrinter", "ctype_of", "RUNTIME_HELPERS"]

#: Helper functions emitted once per translation unit.
RUNTIME_HELPERS = """\
static inline long r_floordiv(long a, long b) {
    long q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline long r_mod(long a, long b) {
    long r = a % b;
    return r < 0 ? r + (b < 0 ? -b : b) : r;
}
static inline long r_clamp(long v, long lo, long hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}
static inline long r_max(long a, long b) { return a > b ? a : b; }
static inline long r_min(long a, long b) { return a < b ? a : b; }
"""

_CTYPE = {
    "Int": "int",
    "Short": "short",
    "Char": "signed char",
    "UChar": "unsigned char",
    "UInt": "unsigned int",
    "UShort": "unsigned short",
    "Long": "long long",
    "ULong": "unsigned long long",
    "Float": "float",
    "Double": "double",
}


def ctype_of(scalar_type: ScalarType) -> str:
    """C type name for a DSL scalar type."""
    return _CTYPE[scalar_type.name]


class CBuffer:
    """How one producer is addressed in generated code.

    ``name`` is the C identifier of the array/pointer; ``origin`` the
    coordinate of element 0 per dimension (may be C expressions for
    per-tile scratch); ``extents`` the allocated extent per dimension
    (ints or C expressions).  Indexing clamps into the allocation.
    """

    def __init__(
        self,
        name: str,
        origin: Sequence[object],
        extents: Sequence[object],
    ):
        if len(origin) != len(extents):
            raise ValueError("origin/extents rank mismatch")
        self.name = name
        self.origin = [str(o) for o in origin]
        self.extents = [str(e) for e in extents]

    def index_expr(self, indices: Sequence[str]) -> str:
        """Row-major flattened index with per-dimension clamping."""
        if len(indices) != len(self.origin):
            raise ValueError(
                f"buffer {self.name}: {len(self.origin)}-d, "
                f"got {len(indices)} indices"
            )
        terms: List[str] = []
        for d, idx in enumerate(indices):
            rel = f"r_clamp((long)({idx}) - (long)({self.origin[d]}), 0, (long)({self.extents[d]}) - 1)"
            stride = "".join(
                f" * (long)({self.extents[k]})"
                for k in range(d + 1, len(self.extents))
            )
            terms.append(f"{rel}{stride}" if stride else rel)
        return " + ".join(terms)

    def load(self, indices: Sequence[str]) -> str:
        return f"{self.name}[{self.index_expr(indices)}]"


_MATH_FN = {
    "min": "fmin",
    "max": "fmax",
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "abs": "fabs",
    "pow": "pow",
    "floor": "floor",
}

_CMP = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!="}


class ExprPrinter:
    """Prints DSL expressions as C++ ``double``-valued expressions.

    ``buffers`` maps producer names to :class:`CBuffer`; ``env`` maps
    parameter names to concrete values; loop variables print as their own
    names (declared ``long`` by the loop emitter).
    """

    def __init__(self, buffers: Mapping[str, CBuffer], env: Mapping[str, int]):
        self.buffers = buffers
        self.env = env

    # -- double-valued expressions ----------------------------------------
    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            if isinstance(e.value, int):
                return f"(double){e.value}"
            return repr(float(e.value))
        if isinstance(e, Parameter):
            return f"(double){self.env[e.name]}"
        if isinstance(e, Variable):
            return f"(double){e.name}"
        if isinstance(e, UnaryOp):
            return f"(-({self.expr(e.operand)}))"
        if isinstance(e, BinOp):
            if e.op == "//":
                return (
                    f"(double)r_floordiv({self.int_expr(e.lhs)}, "
                    f"{self.int_expr(e.rhs)})"
                )
            if e.op == "%":
                return (
                    f"(double)r_mod({self.int_expr(e.lhs)}, "
                    f"{self.int_expr(e.rhs)})"
                )
            return f"({self.expr(e.lhs)} {e.op} {self.expr(e.rhs)})"
        if isinstance(e, MathCall):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{_MATH_FN[e.fn]}({args})"
        if isinstance(e, Select):
            return (
                f"({self.cond(e.condition)} ? {self.expr(e.true_expr)} "
                f": {self.expr(e.false_expr)})"
            )
        if isinstance(e, Cast):
            return f"(double)(long)({self.expr(e.operand)})"
        if isinstance(e, Access):
            indices = [self.int_expr(i) for i in e.indices]
            buf = self.buffers.get(e.producer.name)
            if buf is None:
                raise KeyError(f"no C buffer for {e.producer.name!r}")
            return f"(double){buf.load(indices)}"
        raise TypeError(f"cannot print {type(e).__name__}")

    # -- integer-valued expressions (indices, mod/floordiv operands) -----
    def int_expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            if not isinstance(e.value, int):
                raise TypeError(f"non-integer constant {e.value!r} in index")
            return f"{e.value}L"
        if isinstance(e, Parameter):
            return f"{self.env[e.name]}L"
        if isinstance(e, Variable):
            return e.name
        if isinstance(e, UnaryOp):
            return f"(-({self.int_expr(e.operand)}))"
        if isinstance(e, BinOp):
            if e.op == "//":
                return (
                    f"r_floordiv({self.int_expr(e.lhs)}, {self.int_expr(e.rhs)})"
                )
            if e.op == "%":
                return f"r_mod({self.int_expr(e.lhs)}, {self.int_expr(e.rhs)})"
            if e.op == "/":
                raise TypeError("true division in an integer context")
            return f"({self.int_expr(e.lhs)} {e.op} {self.int_expr(e.rhs)})"
        if isinstance(e, MathCall):
            if e.fn == "min":
                return (f"r_min({self.int_expr(e.args[0])}, "
                        f"{self.int_expr(e.args[1])})")
            if e.fn == "max":
                return (f"r_max({self.int_expr(e.args[0])}, "
                        f"{self.int_expr(e.args[1])})")
            # e.g. Clamp of a data-dependent index: evaluate in double,
            # truncate.
            return f"(long)({self.expr(e)})"
        if isinstance(e, (Select, Cast, Access)):
            return f"(long)({self.expr(e)})"
        raise TypeError(f"cannot print {type(e).__name__} as an index")

    # -- conditions --------------------------------------------------------
    def cond(self, c: Condition) -> str:
        if c.kind == "cmp":
            return f"({self.expr(c.lhs)} {_CMP[c.op]} {self.expr(c.rhs)})"
        joiner = " && " if c.kind == "and" else " || "
        return "(" + joiner.join(self.cond(s) for s in c.sub) + ")"
