"""C++/OpenMP code generation (the PolyMage backend shape, Fig. 3)."""

from .cexpr import CBuffer, ExprPrinter, ctype_of
from .cgen import generate_cpp, generate_main

__all__ = ["generate_cpp", "generate_main", "CBuffer", "ExprPrinter",
           "ctype_of"]
