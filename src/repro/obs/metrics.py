"""Metrics registry: counters, gauges, histograms; JSON and Prometheus
text-format exposition.

One process-global :data:`METRICS` registry collects what a long-running
deployment of the scheduler/executor needs to see — tile retries and
failures, kernel-compile outcomes, buffer-pool recycling, scheduling
degradations, schedule-cache hit rates — as labelled time series.  The
CLI's ``--metrics FILE`` enables collection and writes the Prometheus
text exposition at exit; :meth:`MetricsRegistry.to_dict` is the JSON
form for programmatic consumers.

Design points:

* **Disabled by default, free when disabled** — every mutator returns
  after a single attribute check, so instrumented sites cost nothing in
  production runs that don't ask for metrics (guarded against the
  ``BENCH_executor.json`` baselines).
* **Thread-safe** — one lock around the value maps; mutation sites sit
  at group/chunk/cache-event granularity, never per tile, so contention
  is negligible.
* **Self-describing** — metric names used by the instrumented sites are
  declared in :data:`METRIC_HELP` with their type and help string, and
  unknown names auto-register (counters via :meth:`~MetricsRegistry.inc`,
  gauges via :meth:`~MetricsRegistry.set`, histograms via
  :meth:`~MetricsRegistry.observe`), so ad-hoc instrumentation needs no
  registration ceremony.

:func:`parse_prometheus_text` is the strict round-trip parser the test
suite and the CI smoke step validate the exposition with.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "METRICS",
    "METRIC_HELP",
    "BATCH_SIZE_BUCKETS",
    "parse_prometheus_text",
]

#: default histogram buckets (seconds) — spans group execution times from
#: sub-millisecond synthetic pipelines to multi-second full-scale runs
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: metric name -> (type, help) for every site this package instruments
METRIC_HELP: Dict[str, Tuple[str, str]] = {
    "repro_tiles_total": (
        "counter", "Tiles executed by the overlapped-tiling executor"),
    "repro_tile_retries_total": (
        "counter", "Tile attempts retried after a transient failure"),
    "repro_tile_failures_total": (
        "counter", "Tiles that failed for good (TILE_FAIL raised), "
                   "labelled by the causing error code"),
    "repro_tile_nonretryable_total": (
        "counter", "Tile failures classified non-retryable and surfaced "
                   "without burning retry attempts"),
    "repro_execute_seconds": (
        "histogram", "Wall time of one executor invocation"),
    "repro_group_seconds": (
        "histogram", "Wall time of one fused group's execution"),
    "repro_kernel_compile_total": (
        "counter", "Stage-kernel lowering outcomes "
                   "(result=compiled|cached|fallback|disabled)"),
    "repro_kernel_fused_groups_total": (
        "counter", "Group executions that ran on a fused group kernel "
                   "(one generated kernel per multi-stage group)"),
    "repro_kernel_fuse_fail_total": (
        "counter", "Groups whose fused-kernel compilation failed and "
                   "fell back to per-stage kernels, labelled by reason"),
    "repro_halo_reuse_tiles_total": (
        "counter", "Tiles that reused a carried row window instead of "
                   "recomputing their expanded region"),
    "repro_halo_reuse_saved_points_total": (
        "counter", "Iteration points halo reuse skipped recomputing "
                   "(carried-window points served to adjacent tiles)"),
    "repro_halo_reuse_invalidations_total": (
        "counter", "Carried windows dropped after a failed tile attempt "
                   "(the retry recomputes fresh windows)"),
    "repro_pool_acquires_total": (
        "counter", "Scratch-array acquisitions from a BufferPool "
                   "(result=reused|allocated)"),
    "repro_pool_reclaims_total": (
        "counter", "Scratch arrays returned to a BufferPool"),
    "repro_pool_evictions_total": (
        "counter", "Scratch arrays evicted from capped BufferPools to "
                   "respect max_free_bytes"),
    "repro_degraded_groups_total": (
        "counter", "Groups that fell back to reference execution, "
                   "labelled by the stable error code that forced it"),
    "repro_schedule_tier_attempts_total": (
        "counter", "Resilient-scheduling tier attempts "
                   "(tier=..., status=ok|failed|skipped)"),
    "repro_schedule_cache_events_total": (
        "counter", "Persistent schedule-cache events "
                   "(event=hit|miss|eviction|store)"),
    "repro_schedule_seconds": (
        "histogram", "Wall time of scheduling runs, labelled by strategy"),
    "repro_backend_selected_total": (
        "counter", "Executions dispatched through the backend seam "
                   "(backend=..., tier=cupy|compiled)"),
    "repro_backend_unavailable_total": (
        "counter", "Backend executor tiers found unavailable at dispatch "
                   "(warned once per backend, then silent fallback)"),
    # -- serve layer (repro.serve) --------------------------------------
    "repro_serve_requests_total": (
        "counter", "Requests completed by the serve layer "
                   "(status=ok|error|timeout|shed)"),
    "repro_serve_queue_depth": (
        "gauge", "Requests currently waiting in the serve queue"),
    "repro_serve_batch_size": (
        "histogram", "Coalesced requests per executed micro-batch"),
    "repro_serve_batches_total": (
        "counter", "Micro-batches executed by the serve dispatcher"),
    "repro_serve_queue_wait_seconds": (
        "histogram", "Time a request waited in the queue before its "
                     "batch started executing"),
    "repro_serve_shed_total": (
        "counter", "Requests shed by admission control (queue at its "
                   "depth bound, SERVE_OVERLOADED)"),
    "repro_serve_timeouts_total": (
        "counter", "Requests whose deadline expired before execution "
                   "(SERVE_TIMEOUT)"),
    "repro_serve_tier": (
        "gauge", "Current degradation-ladder tier of a pipeline host: "
                 "an index into the host's ladder, healthiest rung "
                 "first (a GPU-backend host prepends a cupy rung to "
                 "compiled/interpreter/no-fusion)"),
    "repro_serve_tier_changes_total": (
        "counter", "Degradation-ladder transitions (direction=down|up)"),
    "repro_serve_warm_seconds": (
        "histogram", "Time to warm a pipeline host (build + schedule + "
                     "kernel compile)"),
    # -- worker tier (repro.serve.supervisor) ---------------------------
    "repro_serve_workers": (
        "gauge", "Live worker processes in the supervised tier"),
    "repro_serve_worker_restarts_total": (
        "counter", "Worker respawns by the supervisor "
                   "(reason=crash|timeout|heartbeat)"),
    "repro_serve_worker_heartbeat_age_seconds": (
        "gauge", "Seconds since each worker's last heartbeat "
                 "(labelled by worker index)"),
    "repro_serve_worker_batches_total": (
        "counter", "Micro-batches executed on the worker tier, "
                   "labelled by worker index"),
    "repro_serve_worker_retries_total": (
        "counter", "In-flight requests retried on a replacement worker "
                   "after a worker death (at most once per request)"),
    "repro_serve_worker_lost_total": (
        "counter", "Requests failed with SERVE_WORKER_LOST after the "
                   "bounded retry also lost its worker"),
    "repro_serve_shm_bytes": (
        "gauge", "Bytes currently held in live shared-memory segments "
                 "owned by this process"),
    "repro_serve_shm_segments": (
        "gauge", "Live shared-memory segments owned by this process"),
    "repro_serve_shm_swept_total": (
        "counter", "Stale shared-memory segments of dead owners "
                   "reclaimed by the supervisor's sweep"),
    "repro_serve_breaker_state": (
        "gauge", "Per-pipeline worker-tier circuit breaker "
                 "(0=closed, 1=open, 2=half-open)"),
    "repro_serve_breaker_trips_total": (
        "counter", "Circuit-breaker trips to the in-process fallback "
                   "tier after repeated worker deaths"),
}

#: bucket edges for the batch-size histogram (requests, not seconds)
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class _Histogram:
    """Cumulative-bucket histogram state for one label set."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * len(buckets)  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                break

    def cumulative(self) -> List[Tuple[float, int]]:
        out, running = [], 0
        for edge, n in zip(self.buckets, self.counts):
            running += n
            out.append((edge, running))
        out.append((math.inf, self.count))
        return out


class _Metric:
    __slots__ = ("name", "kind", "help", "buckets", "values")

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric type {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(sorted(buckets))
        #: label key -> float (counter/gauge) or _Histogram
        self.values: Dict[LabelKey, Any] = {}


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    All mutators take labels as keyword arguments::

        METRICS.inc("repro_tiles_total", 64)
        METRICS.inc("repro_tile_failures_total", code="FAULT_INJECTED")
        METRICS.set("repro_pool_free_arrays", 12)
        METRICS.observe("repro_group_seconds", 0.031, pipeline="harris")
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def reset(self, enabled: bool = False) -> None:
        """Drop all recorded values; set the enabled flag."""
        with self._lock:
            self.enabled = enabled
            self._metrics = {}

    # -- registration ---------------------------------------------------
    def describe(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        """Pre-register a metric (idempotent; declared type must match)."""
        with self._lock:
            self._get(name, kind, help, buckets)

    def _get(self, name: str, kind: str, help: str = "",
             buckets: Optional[Tuple[float, ...]] = None) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            declared = METRIC_HELP.get(name)
            if declared is not None:
                kind, help = declared[0], help or declared[1]
            metric = _Metric(name, kind, help,
                             buckets or DEFAULT_BUCKETS)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    # -- mutators (free when disabled) ----------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (must be >= 0) to a counter."""
        if not self.enabled:
            return
        if value < 0:
            raise ValueError(f"counter increment must be >= 0, got {value}")
        key = _label_key(labels)
        with self._lock:
            metric = self._get(name, "counter")
            metric.values[key] = metric.values.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to ``value``."""
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            metric = self._get(name, "gauge")
            metric.values[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation."""
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            metric = self._get(name, "histogram")
            hist = metric.values.get(key)
            if hist is None:
                hist = metric.values[key] = _Histogram(metric.buckets)
            hist.observe(float(value))

    # -- reads ----------------------------------------------------------
    def value(self, name: str, **labels: Any):
        """The current value for tests and programmatic checks: a float
        for counters/gauges, a ``(count, sum)`` pair for histograms,
        ``0.0`` for a counter/gauge series never touched, and ``None``
        for an entirely unknown metric."""
        key = _label_key(labels)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return None
            v = metric.values.get(key)
            if metric.kind == "histogram":
                return (0, 0.0) if v is None else (v.count, v.sum)
            return 0.0 if v is None else v

    # -- exposition -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON exposition: metric name -> type/help/samples."""
        out: Dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                samples = []
                for key in sorted(metric.values):
                    v = metric.values[key]
                    if metric.kind == "histogram":
                        sample_value: Any = {
                            "count": v.count,
                            "sum": v.sum,
                            "buckets": [
                                {"le": _fmt(edge), "count": n}
                                for edge, n in v.cumulative()
                            ],
                        }
                    else:
                        sample_value = v
                    samples.append(
                        {"labels": dict(key), "value": sample_value}
                    )
                out[name] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "samples": samples,
                }
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {_escape(metric.help)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for key in sorted(metric.values):
                    v = metric.values[key]
                    if metric.kind == "histogram":
                        for edge, n in v.cumulative():
                            lines.append(_sample(
                                f"{name}_bucket",
                                key + (("le", _fmt(edge)),), n,
                            ))
                        lines.append(_sample(f"{name}_sum", key, v.sum))
                        lines.append(_sample(f"{name}_count", key, v.count))
                    else:
                        lines.append(_sample(name, key, v))
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str, fmt: str = "prometheus") -> None:
        """Write the exposition to ``path`` (``"prometheus"`` text or
        ``"json"``)."""
        with open(path, "w") as fh:
            if fmt == "json":
                json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            elif fmt == "prometheus":
                fh.write(self.to_prometheus())
            else:
                raise ValueError(f"unknown exposition format {fmt!r}")


def _sample(name: str, key: LabelKey, value: float) -> str:
    if key:
        labels = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
        return f"{name}{{{labels}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


# -- round-trip parser -------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
    r"(?:,|$)"
)


def _unescape(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, LabelKey], float]:
    """Parse a Prometheus text exposition back into
    ``{(name, sorted_labels): value}``.

    Strict: any line that is neither a comment, blank, nor a well-formed
    sample raises ``ValueError`` — this is the validator the test suite
    and the CI smoke step run over ``--metrics`` output.
    """
    out: Dict[Tuple[str, LabelKey], float] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels: Dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            pos = 0
            while pos < len(raw):
                pair = _LABEL_PAIR_RE.match(raw, pos)
                if pair is None:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {raw!r}"
                    )
                labels[pair.group("key")] = _unescape(pair.group("value"))
                pos = pair.end()
        value = m.group("value")
        try:
            parsed = float(value)
        except ValueError:
            if value == "+Inf":
                parsed = math.inf
            elif value == "-Inf":
                parsed = -math.inf
            elif value == "NaN":
                parsed = math.nan
            else:
                raise ValueError(
                    f"line {lineno}: malformed value: {value!r}"
                )
        out[(m.group("name"), _label_key(labels))] = parsed
    return out


#: the process-global registry every instrumented site reports into
METRICS = MetricsRegistry()
