"""Thread-safe span tracing for the scheduling and execution path.

A *span* is a named interval of wall clock (``time.perf_counter``, so
durations are monotonic and immune to system clock adjustments) with
free-form attributes and child spans.  The tracer builds one tree per
run: the CLI's ``--trace-json FILE`` enables it, the instrumented sites
— :func:`repro.runtime.execute_grouping`,
:func:`repro.resilience.execute_guarded`,
:func:`repro.resilience.resilient_schedule`,
:func:`repro.fusion.schedule_pipeline` — open spans around their phases,
and the finished tree serializes to JSON.

Usage::

    from repro.obs import TRACE
    TRACE.reset(enabled=True)
    with TRACE.span("execute", pipeline="harris") as sp:
        with TRACE.span("group", index=0):
            ...
        sp.set(groups=1)
    TRACE.write_json("trace.json")

Parenting is tracked per thread (a ``threading.local`` stack), so nested
``with`` blocks on one thread produce the expected tree.  Work handed to
a thread pool starts with an empty stack on the worker thread; the
caller captures its current span and passes it as ``parent=`` — this is
how the executor's per-chunk spans attach under their group span.

**Disabled cost.**  The tracer is disabled by default and
``Tracer.span`` returns a shared no-op handle without allocating
anything, so an instrumented site costs one attribute check when tracing
is off.  Sites are placed at group/chunk granularity (never per tile),
keeping the enabled cost far below measurement noise too — the
``bench_executor_overhead.py`` baselines guard this.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from ..errors import error_code

__all__ = ["Span", "Tracer", "TRACE", "NULL_SPAN"]

#: trace-file schema version (bump on incompatible span-dict changes)
TRACE_FORMAT = 1


class Span:
    """One timed interval: name, perf-counter start/end, attributes, and
    child spans (appended by the tracer as nested spans close)."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds from start to end (to now while the span is open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes on the span."""
        self.attrs.update(attrs)

    def to_dict(self, origin: Optional[float] = None) -> Dict[str, Any]:
        """JSON-able form; times are seconds relative to ``origin``
        (the root span's start), children sorted by start time."""
        if origin is None:
            origin = self.start
        return {
            "name": self.name,
            "start_s": round(self.start - origin, 9),
            "duration_s": round(self.duration, 9),
            "attrs": self.attrs,
            "children": [
                c.to_dict(origin)
                for c in sorted(self.children, key=lambda c: c.start)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration:.6f}s, "
                f"{len(self.children)} children)")


class _NullSpan:
    """The shared do-nothing handle a disabled tracer hands out."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager opening one span on ``__enter__`` (that is when
    the clock starts — not at :meth:`Tracer.span` call time)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_parent", "span")

    def __init__(self, tracer: "Tracer", name: str,
                 parent: Optional[Span], attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._parent = parent
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._parent, self._attrs)
        return self.span

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        if exc_val is not None:
            self.span.attrs.setdefault("error", error_code(exc_val))
        self._tracer._close(self.span)
        return False


class Tracer:
    """A per-process span tree builder.

    Disabled by default; :meth:`reset` with ``enabled=True`` opens a
    fresh root span.  Thread-safe: parenting is per-thread, tree
    mutation is locked.
    """

    def __init__(self, enabled: bool = False):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.enabled = False
        self.root: Optional[Span] = None
        if enabled:
            self.reset(enabled=True)

    # -- lifecycle ------------------------------------------------------
    def reset(self, enabled: bool = False) -> None:
        """Drop any existing tree; with ``enabled`` start a new root."""
        with self._lock:
            self.enabled = enabled
            self.root = (
                Span("trace", time.perf_counter()) if enabled else None
            )
        self._local = threading.local()

    # -- span API -------------------------------------------------------
    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: Any):
        """A context manager for one span.

        ``parent`` overrides the thread-local current span — pass it when
        the span body runs on a different thread than its logical parent
        (thread-pool workers).  When disabled this returns the shared
        :data:`NULL_SPAN` without allocating.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, parent, attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread (``None`` outside any
        span, or with tracing disabled)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def add_span(self, name: str, start: float, end: float,
                 parent: Optional[Span] = None, **attrs: Any
                 ) -> Optional[Span]:
        """Record an already-measured interval (used to fold externally
        timed phases — e.g. the ``--profile-schedule`` breakdown — into
        the tree).  Times are ``perf_counter`` values."""
        if not self.enabled:
            return None
        span = Span(name, start, attrs)
        span.end = end
        target = parent or self.current() or self.root
        with self._lock:
            target.children.append(span)
        return span

    # -- internals ------------------------------------------------------
    def _open(self, name: str, parent: Optional[Span],
              attrs: Dict[str, Any]) -> Span:
        span = Span(name, time.perf_counter(), attrs)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        target = parent or (stack[-1] if stack else None) or self.root
        with self._lock:
            if target is not None:
                target.children.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # unbalanced exit: drop through it
            while stack and stack.pop() is not span:
                pass

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The whole tree as a JSON-able dict (``format``, ``root``)."""
        with self._lock:
            root = self.root
        if root is None:
            return {"format": TRACE_FORMAT, "root": None}
        if root.end is None:
            ends = [c.end for c in root.children if c.end is not None]
            root.end = max(ends) if ends else time.perf_counter()
        return {"format": TRACE_FORMAT, "root": root.to_dict()}

    def write_json(self, path: str) -> None:
        """Serialize the tree to ``path`` as indented JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")


#: the process-global tracer every instrumented site reports into
TRACE = Tracer()
