"""Observability: span tracing and metrics export.

``repro.obs`` is the telemetry layer the ROADMAP's production-service
scenario needs: a thread-safe span tracer (:mod:`repro.obs.trace`) that
turns one scheduling-plus-execution run into a JSON span tree, and a
metrics registry (:mod:`repro.obs.metrics`) with counters, gauges, and
histograms exposable as JSON or Prometheus text format.

Both are **disabled by default and free when disabled** — instrumented
sites pay one attribute check.  The CLI enables them via
``--trace-json FILE`` and ``--metrics FILE`` on the ``run`` and
``schedule`` subcommands; library users call
``TRACE.reset(enabled=True)`` / ``METRICS.reset(enabled=True)`` around
the code they want observed.

See ``docs/observability.md`` for the trace and metrics schemas.
"""

from .metrics import (
    METRIC_HELP,
    METRICS,
    MetricsRegistry,
    parse_prometheus_text,
)
from .trace import NULL_SPAN, Span, TRACE, Tracer

__all__ = [
    "TRACE",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "METRICS",
    "MetricsRegistry",
    "METRIC_HELP",
    "parse_prometheus_text",
]
