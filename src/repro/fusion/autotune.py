"""PolyMage-A: the greedy heuristic driven by auto-tuning (Sec. 6.1).

PolyMage's auto-tuner sweeps a small grid of uniform tile sizes and
overlap-tolerance thresholds, generates code for each configuration, runs
it, and keeps the empirically fastest.  The paper used tile sizes
{8, 16, 32, 64, 128, 256} (applied to two dimensions) and tolerances
{0.2, 0.4, 0.5}.  Our "empirical measurement" is the same analytic timing
model every other strategy is priced with
(:func:`repro.perfmodel.timing.estimate_runtime`), keeping the comparison
apples-to-apples — the paper notes this tuning takes minutes to ~27
minutes of real machine time, versus the fully model-driven PolyMageDP.
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import List, Optional, Sequence, Tuple

from ..dsl.pipeline import Pipeline
from ..model.machine import Machine
from ..perfmodel.timing import estimate_runtime
from .greedy import polymage_greedy
from .grouping import Grouping, GroupingStats

__all__ = ["AutotuneTrial", "AutotuneResult", "polymage_autotune"]

#: The paper's search space (Sec. 6.1).
DEFAULT_TILE_SIZES: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)
DEFAULT_TOLERANCES: Tuple[float, ...] = (0.2, 0.4, 0.5)


@dataclass(frozen=True)
class AutotuneTrial:
    """One evaluated (tile size, tolerance) configuration."""

    tile_size: int
    overlap_tolerance: float
    grouping: Grouping
    estimated_seconds: float


@dataclass(frozen=True)
class AutotuneResult:
    """Full auto-tuning outcome: the best grouping plus every trial."""

    best: Grouping
    trials: Tuple[AutotuneTrial, ...]

    @property
    def best_trial(self) -> AutotuneTrial:
        return min(self.trials, key=lambda t: t.estimated_seconds)


def polymage_autotune(
    pipeline: Pipeline,
    machine: Machine,
    nthreads: Optional[int] = None,
    tile_sizes: Sequence[int] = DEFAULT_TILE_SIZES,
    tolerances: Sequence[float] = DEFAULT_TOLERANCES,
) -> AutotuneResult:
    """Sweep the PolyMage auto-tuning space and return the fastest
    configuration per the timing model."""
    if not tile_sizes or not tolerances:
        raise ValueError("need at least one tile size and one tolerance")
    nthreads = nthreads or machine.num_cores

    start = time.perf_counter()
    trials: List[AutotuneTrial] = []
    for tol in tolerances:
        for ts in tile_sizes:
            grouping = polymage_greedy(
                pipeline, machine, tile_size=ts, overlap_tolerance=tol
            )
            est = estimate_runtime(
                pipeline, grouping, machine, nthreads=nthreads,
                codegen="polymage",
            )
            trials.append(
                AutotuneTrial(
                    tile_size=ts,
                    overlap_tolerance=tol,
                    grouping=grouping,
                    estimated_seconds=est,
                )
            )
    elapsed = time.perf_counter() - start

    best = min(trials, key=lambda t: t.estimated_seconds)
    stats = GroupingStats(
        strategy="polymage-auto",
        enumerated=len(trials),
        cost_evaluations=len(trials),
        time_seconds=elapsed,
        extra={
            "best_tile_size": float(best.tile_size),
            "best_tolerance": best.overlap_tolerance,
        },
    )
    best_grouping = Grouping(
        pipeline=pipeline,
        groups=best.grouping.groups,
        tile_sizes=best.grouping.tile_sizes,
        cost=best.estimated_seconds,
        stats=stats,
    )
    return AutotuneResult(best=best_grouping, trials=tuple(trials))
