"""Halide's greedy auto-scheduler (Mullapudi et al., SIGGRAPH 2016), as
described in Sec. 2.3 of the paper — the H-auto comparator.

The algorithm starts with one group per function, then repeatedly
evaluates every pairwise producer→consumer group merge, estimating for
each the best power-of-two tile configuration and the resulting analytic
cost (arithmetic + ``LOAD_COST`` × loads, with penalties for exceeding the
cache and constraints on parallelism and vector width).  The merge with
the largest positive benefit is applied; the process stops when no merge
is profitable.  Two properties the paper contrasts with PolyMageDP:

* the choice is locally greedy, committing to the best pair first and
  thereby excluding large families of groupings (Fig. 4 discussion), and
* candidate tile sizes are powers of two only, because each one must be
  explicitly evaluated.

Unlike PolyMage, Halide *can* fuse reductions into consumer groups (via
``compute_at``), which is why H-auto/H-manual win on Bilateral Grid
(Sec. 6.2); the fallback path of
:func:`repro.perfmodel.metrics.group_metrics` prices such groups.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..graph.dag import StageGraph, mask_of
from ..model.machine import Machine
from ..perfmodel.metrics import (
    group_metrics,
    stage_ops_per_point,
    stage_work_points,
)
from ..poly.alignscale import compute_group_geometry
from .grouping import Grouping, GroupingStats

__all__ = ["halide_auto_schedule", "halide_group_cost"]

StageSet = FrozenSet[Function]

_POW2 = (8, 16, 32, 64, 128, 256, 512)


def _tile_candidates(
    extents: Sequence[int], machine: Machine
) -> List[Tuple[int, ...]]:
    """Power-of-two tile configurations over the last two dimensions; the
    innermost must hold at least ``VECTOR_WIDTH`` contiguous points."""
    vw = machine.halide.vector_width
    ndim = len(extents)
    inner_opts = [t for t in _POW2 if vw <= t <= extents[-1]]
    if not inner_opts:
        inner_opts = [min(extents[-1], vw)]
    if ndim == 1:
        return [(t,) for t in inner_opts]
    outer_opts = [t for t in _POW2 if t <= extents[-2]] or [extents[-2]]
    prefix = tuple(extents[:-2])  # outer dims (e.g. colour) untiled
    return [
        prefix + (o, i) for o in outer_opts for i in inner_opts
    ]


def halide_group_cost(
    pipeline: Pipeline,
    members: StageSet,
    machine: Machine,
    total_pipeline_bytes: float,
) -> Tuple[float, Tuple[int, ...]]:
    """Halide-style analytic cost of a group and the tile sizes that
    minimise it.

    ``cost = arithmetic + LOAD_COST * loaded_elements``, where loads are
    scaled up when the tile footprint exceeds ``CACHE_SIZE`` (memory
    footprint penalty) and configurations with fewer tiles than
    ``PARALLELISM_THRESHOLD`` are rejected.
    """
    hp = machine.halide
    geom = compute_group_geometry(pipeline, members)
    if geom is not None:
        extents = geom.grid_extents
    else:
        liveouts = [
            s
            for s in members
            if pipeline.is_output(s)
            or any(c not in members for c in pipeline.consumers(s))
        ]
        ref = max(liveouts, key=lambda s: (s.ndim, pipeline.domain_size(s)))
        extents = pipeline.domain_extents(ref)

    best_cost = float("inf")
    best_tiles: Tuple[int, ...] = tuple(min(e, 64) for e in extents)
    candidates = _tile_candidates(extents, machine)
    allow_serial = total_pipeline_bytes < hp.cache_size  # tiny pipelines
    for tiles in candidates:
        metrics = group_metrics(pipeline, members, tiles)
        if metrics.n_tiles < hp.parallelism_threshold and not allow_serial:
            continue
        arith = sum(
            pts * stage_ops_per_point(s)
            for s, pts in metrics.stage_points.items()
        )
        load_bytes = metrics.livein_bytes_total + metrics.liveout_bytes_total
        penalty = max(1.0, metrics.tile_footprint_bytes / hp.cache_size)
        cost = arith + hp.load_cost * (load_bytes / 4.0) * penalty
        if cost < best_cost:
            best_cost = cost
            best_tiles = tiles
    if best_cost == float("inf"):
        # No candidate met the parallelism threshold; fall back to the
        # smallest tiles (most parallelism).
        tiles = candidates[0]
        metrics = group_metrics(pipeline, members, tiles)
        arith = sum(
            pts * stage_ops_per_point(s)
            for s, pts in metrics.stage_points.items()
        )
        load_bytes = metrics.livein_bytes_total + metrics.liveout_bytes_total
        penalty = max(1.0, metrics.tile_footprint_bytes / hp.cache_size)
        best_cost = arith + hp.load_cost * (load_bytes / 4.0) * penalty
        best_tiles = tiles
    return best_cost, best_tiles


def halide_auto_schedule(
    pipeline: Pipeline, machine: Machine
) -> Grouping:
    """Run the greedy auto-grouping and return the resulting schedule."""
    graph = StageGraph.from_pipeline(pipeline)
    index = {s: i for i, s in enumerate(pipeline.stages)}
    total_bytes = float(
        sum(pipeline.domain_size(s) * s.scalar_type.size for s in pipeline.stages)
    )

    groups: List[StageSet] = [frozenset({s}) for s in pipeline.stages]
    cost_cache: Dict[StageSet, Tuple[float, Tuple[int, ...]]] = {}

    def cost_of(g: StageSet) -> Tuple[float, Tuple[int, ...]]:
        hit = cost_cache.get(g)
        if hit is None:
            hit = halide_group_cost(pipeline, g, machine, total_bytes)
            cost_cache[g] = hit
        return hit

    start = time.perf_counter()
    evaluated = 0
    while True:
        # Enumerate producer->consumer group pairs.
        owner: Dict[Function, int] = {}
        for gi, g in enumerate(groups):
            for s in g:
                owner[s] = gi
        pairs = set()
        for p, c in pipeline.edges():
            gp, gc = owner[p], owner[c]
            if gp != gc:
                pairs.add((gp, gc))

        best_benefit = 0.0
        best_pair: Optional[Tuple[int, int]] = None
        for gp, gc in pairs:
            merged = groups[gp] | groups[gc]
            # Validity: the condensation must stay acyclic.
            masks = [
                mask_of(index[s] for s in g)
                for j, g in enumerate(groups)
                if j not in (gp, gc)
            ]
            masks.append(mask_of(index[s] for s in merged))
            if not graph.condensation_is_acyclic(masks):
                continue
            evaluated += 1
            cost_merged, _ = cost_of(merged)
            benefit = cost_of(groups[gp])[0] + cost_of(groups[gc])[0] - cost_merged
            if benefit > best_benefit:
                best_benefit = benefit
                best_pair = (gp, gc)
        if best_pair is None:
            break
        gp, gc = best_pair
        merged = groups[gp] | groups[gc]
        groups = [g for j, g in enumerate(groups) if j not in (gp, gc)]
        groups.append(merged)
    elapsed = time.perf_counter() - start

    masks = [mask_of(index[s] for s in g) for g in groups]
    order = graph.condensation_topo_order(masks)
    ordered = [groups[i] for i in order]
    tiles = [cost_of(g)[1] for g in ordered]
    total_cost = sum(cost_of(g)[0] for g in ordered)

    stats = GroupingStats(
        strategy="halide-auto",
        enumerated=evaluated,
        cost_evaluations=len(cost_cache),
        time_seconds=elapsed,
    )
    return Grouping(
        pipeline=pipeline,
        groups=tuple(ordered),
        tile_sizes=tuple(tiles),
        cost=total_cost,
        stats=stats,
    )
