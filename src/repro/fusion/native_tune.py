"""Native auto-tuning: PolyMage-A's real protocol, on real hardware.

The paper's PolyMage-A generates code for every (tile size, overlap
tolerance) configuration, *compiles and runs it*, and keeps the
empirically fastest — taking "from a few minutes to up to 27 minutes"
(Sec. 6.2).  The analytic tuner in :mod:`repro.fusion.autotune` replaces
the measurement with the timing model; this module performs the genuine
protocol using the C++ code generator when a compiler is available:
each candidate greedy grouping is emitted, built with
``g++ -O3 -fopenmp``, executed on synthetic inputs, and timed.

Useful both as a faithful PolyMage-A reproduction and as a ground-truth
oracle for validating the analytic model on the build machine.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dsl.pipeline import Pipeline
from ..model.machine import Machine
from .autotune import DEFAULT_TILE_SIZES, DEFAULT_TOLERANCES
from .greedy import polymage_greedy
from .grouping import Grouping, GroupingStats

__all__ = ["NativeTrial", "NativeTuneResult", "native_autotune",
           "measure_native", "have_compiler"]


def have_compiler() -> bool:
    """Whether a usable g++ is on PATH."""
    return shutil.which("g++") is not None


@dataclass(frozen=True)
class NativeTrial:
    """One compiled-and-measured configuration."""

    tile_size: int
    overlap_tolerance: float
    grouping: Grouping
    milliseconds: float


@dataclass(frozen=True)
class NativeTuneResult:
    """Outcome of a native tuning run."""

    best: Grouping
    trials: Tuple[NativeTrial, ...]
    tuning_seconds: float


def measure_native(
    pipeline: Pipeline,
    grouping: Grouping,
    workdir: Optional[str] = None,
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Compile the grouping's generated C++ and return the minimum
    wall-clock milliseconds over ``repeats`` runs."""
    from ..codegen import generate_cpp, generate_main

    if not have_compiler():
        raise RuntimeError("no g++ on PATH; native measurement unavailable")
    owns = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro_tune_")
    tag = f"cand_{abs(hash((grouping.group_names().__str__(), grouping.tile_sizes))) % (1 << 30):x}"
    src = os.path.join(workdir, f"{tag}.cpp")
    exe = os.path.join(workdir, tag)
    with open(src, "w") as fh:
        fh.write(generate_cpp(pipeline, grouping))
        fh.write(generate_main(pipeline, repeats=repeats))
    subprocess.run(
        ["g++", "-O3", "-fopenmp", "-march=native", "-o", exe, src],
        check=True, capture_output=True,
    )
    rng = np.random.default_rng(seed)
    in_paths, out_paths = [], []
    for img in pipeline.images:
        path = os.path.join(workdir, f"{img.name}.bin")
        if not os.path.exists(path):
            shape = pipeline.image_shape(img)
            if img.scalar_type.np_dtype.kind in "ui":
                data = rng.integers(0, 1024, shape).astype(
                    img.scalar_type.np_dtype
                )
            else:
                data = rng.random(shape, dtype=np.float32)
            data.tofile(path)
        in_paths.append(path)
    for out in pipeline.outputs:
        out_paths.append(os.path.join(workdir, f"{tag}_out_{out.name}.bin"))
    result = subprocess.run(
        [exe] + in_paths + out_paths, check=True, capture_output=True,
        text=True,
    )
    ms = float(result.stdout.strip().splitlines()[-1])
    if owns:
        shutil.rmtree(workdir, ignore_errors=True)
    return ms


def native_autotune(
    pipeline: Pipeline,
    machine: Machine,
    tile_sizes: Sequence[int] = DEFAULT_TILE_SIZES,
    tolerances: Sequence[float] = DEFAULT_TOLERANCES,
    repeats: int = 3,
) -> NativeTuneResult:
    """Run PolyMage-A's genuine empirical sweep: greedy grouping per
    configuration, generated C++ compiled and timed, fastest kept.

    Distinct configurations often produce the same grouping; each unique
    grouping is compiled and measured once.
    """
    if not have_compiler():
        raise RuntimeError("no g++ on PATH; use repro.fusion.polymage_autotune")

    start = time.perf_counter()
    workdir = tempfile.mkdtemp(prefix="repro_native_tune_")
    trials: List[NativeTrial] = []
    measured = {}
    try:
        for tol in tolerances:
            for ts in tile_sizes:
                grouping = polymage_greedy(
                    pipeline, machine, tile_size=ts, overlap_tolerance=tol
                )
                key = (tuple(map(tuple, grouping.group_names())),
                       grouping.tile_sizes)
                if key not in measured:
                    measured[key] = measure_native(
                        pipeline, grouping, workdir=workdir, repeats=repeats
                    )
                trials.append(
                    NativeTrial(
                        tile_size=ts,
                        overlap_tolerance=tol,
                        grouping=grouping,
                        milliseconds=measured[key],
                    )
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    elapsed = time.perf_counter() - start

    best_trial = min(trials, key=lambda t: t.milliseconds)
    stats = GroupingStats(
        strategy="polymage-auto-native",
        enumerated=len(trials),
        cost_evaluations=len(measured),
        time_seconds=elapsed,
        extra={
            "best_tile_size": float(best_trial.tile_size),
            "best_tolerance": best_trial.overlap_tolerance,
            "best_ms": best_trial.milliseconds,
        },
    )
    best = Grouping(
        pipeline=pipeline,
        groups=best_trial.grouping.groups,
        tile_sizes=best_trial.grouping.tile_sizes,
        cost=best_trial.milliseconds / 1e3,
        stats=stats,
    )
    return NativeTuneResult(
        best=best, trials=tuple(trials), tuning_seconds=elapsed
    )
