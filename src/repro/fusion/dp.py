"""Dynamic-programming grouping (Sec. 3, Fig. 5, Algorithm 1).

The DP state is a set of *current* groups ``G = {H1, ..., Hn}`` (disjoint
subsets of the stage DAG) plus the set of nodes already placed in finalized
groups.  ``F(G)`` is the minimum total cost of the remainder of the DAG
under the constraint that the groups of ``G`` may only grow by absorbing
their successors (Case I) or be finalized as-is (Case II, after which the
search restarts from every partition of their successor set).  Memoizing
``F`` over states makes the search evaluate *every* valid grouping while
visiting each state once: for a linear pipeline of ``n`` stages all
``2^(n-1)`` groupings are covered in ``n (n + 1) / 2`` states — the paper's
``O(n^2)`` bound, and exactly the "groupings enumerated" counts of its
Table 2 (e.g. 10 states for the 4-stage Unsharp Mask).

Validity (Sec. 3.2): a merge of successor ``s`` into group ``H`` is
rejected when another successor ``t`` of ``H`` reaches ``s`` (the
resulting condensation would have the cycle ``H → t ⇝ s ∈ H``); seed
blocks produced by ``PARTITIONS`` are filtered by the analogous check; and
the cost function charges infinity for groups that are not connected
subgraphs (Eq. 1) or whose dependences cannot be made constant.

Node granularity is a parameter: the bounded incremental driver
(:mod:`repro.fusion.bounded`) re-runs the DP over *collapsed* graphs whose
nodes each stand for a set of original stages, so this module works with a
per-node stage-set mapping throughout.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..errors import GroupingBudgetExceeded, NoValidGroupingError
from ..graph.dag import StageGraph, iter_bits
from ..graph.partition import mask_partitions
from ..model.cost import CostModel
from ..model.machine import Machine
from ..profiling import PROFILE
from .grouping import Grouping, GroupingStats

__all__ = ["DPGrouper", "DPResult", "GroupingBudgetExceeded", "dp_group"]

INF = float("inf")

#: Relative slack applied to branch-and-bound cutoffs.  Bounds are threaded
#: top-down as repeated subtractions (``ub - base``) while candidate totals
#: are accumulated bottom-up; float addition is not associative, so a branch
#: whose true value *equals* the bound can drift past it by a few ulps and
#: be wrongly ruled non-exact.  Pruning only beyond ``ub * (1 + SLACK)``
#: absorbs that drift while remaining lossless: anything pruned is still
#: provably worse than the incumbent by more than the slack, which is
#: orders of magnitude above any accumulated rounding error and orders of
#: magnitude below any genuine cost difference.
_BB_SLACK = 1e-9


class DPResult(NamedTuple):
    cost: float
    groups: Tuple[int, ...]  # final group bitmasks


class DPGrouper:
    """The DP search over one (possibly collapsed) stage graph.

    Parameters
    ----------
    graph:
        The DAG to group.
    cost_fn:
        ``mask -> float``: the cost of finalizing the node set ``mask`` as
        one group; must return ``inf`` for invalid groups.
    sizes:
        Underlying stage count per node (all 1 unless the graph is a
        collapsed one); the group limit bounds the *stage* count.
    group_limit:
        Maximum stages per group (``l`` of Sec. 5); ``None`` = unbounded.
    max_states:
        Optional safety budget on evaluated states.
    deadline:
        Optional absolute ``time.perf_counter()`` instant; exceeding it
        raises :class:`GroupingBudgetExceeded` just like ``max_states``.
    prune:
        Enable branch-and-bound and dominance pruning.  **Provably
        lossless**: the returned optimum (cost *and* groups, including
        tie-breaks) is identical to the unpruned search — only the number
        of visited states changes.  Three mechanisms:

        * an *incumbent* upper bound from the all-singletons grouping
          (always valid and achievable) seeds the search;
        * branches are cut when a partial sum already exceeds the best
          achievable bound — strictly (``>`` never ``>=``), so a branch
          tying the optimum is always explored, preserving the unpruned
          first-minimum tie-break;
        * *dominance*: a seed block (or merged group) that is
          disconnected within its reachability closure can never become a
          connected group by absorbing successors, so its whole subtree
          is infinite-cost and is skipped.

        Off by default so the paper's Table 2 state counts remain
        reproducible; production entry points (CLI, benchmarks) enable it.
    """

    def __init__(
        self,
        graph: StageGraph,
        cost_fn: Callable[[int], float],
        sizes: Optional[Sequence[int]] = None,
        group_limit: Optional[int] = None,
        max_states: Optional[int] = None,
        viable_fn: Optional[Callable[[int], bool]] = None,
        deadline: Optional[float] = None,
        prune: bool = False,
    ):
        self.graph = graph
        self.cost_fn = cost_fn
        self.sizes = list(sizes) if sizes is not None else [1] * graph.num_nodes
        if len(self.sizes) != graph.num_nodes:
            raise ValueError("sizes must have one entry per graph node")
        self.group_limit = group_limit
        self.max_states = max_states
        self.deadline = deadline
        # viable_fn(mask) -> False means the node set can NEVER be part of
        # a finite-cost group, nor can any superset (monotone failures:
        # reductions, data-dependent intra-edges, scaling conflicts).  Such
        # merges are pruned immediately, which is what keeps wide DAGs
        # (Camera Pipeline, Pyramid Blend) tractable.
        self.viable_fn = viable_fn
        self.prune = prune
        # memo value: (result, exact).  A non-exact entry records a proven
        # lower bound (its cost is the upper bound the subproblem was cut
        # under; the true value is strictly greater) and is reusable
        # whenever the current bound is no larger.
        self._memo: Dict[Tuple[FrozenSet[int], int], Tuple[DPResult, bool]] = {}
        self._cost_cache: Dict[int, float] = {}
        self._viable_cache: Dict[int, bool] = {}
        self._succ_cache: Dict[int, int] = {}
        self._reach_cache: Dict[int, int] = {}
        self._part_cache: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        self._connectable_cache: Dict[int, bool] = {}
        self._size_cache: Dict[int, int] = {}
        self._unit_sizes = all(s == 1 for s in self.sizes)
        self.states_evaluated = 0
        #: pruning-effectiveness counters (all zero when ``prune=False``)
        self.prune_counters: Dict[str, int] = {
            "bound_cutoffs": 0,       # Case II partition loops skipped
            "pruned_branches": 0,     # subproblems cut by the bound
            "dominance_blocks": 0,    # seed blocks dropped as unconnectable
            "dominance_merges": 0,    # Case I merges dropped as unconnectable
            "lb_memo_hits": 0,        # lower-bound memo short-circuits
        }

    # -- helpers -----------------------------------------------------------
    def _mask_size(self, mask: int) -> int:
        if self._unit_sizes:
            return mask.bit_count()
        hit = self._size_cache.get(mask)
        if hit is None:
            hit = sum(self.sizes[i] for i in iter_bits(mask))
            self._size_cache[mask] = hit
        return hit

    def _group_cost(self, mask: int) -> float:
        cost = self._cost_cache.get(mask)
        if cost is None:
            cost = self.cost_fn(mask)
            self._cost_cache[mask] = cost
        return cost

    def _viable(self, mask: int) -> bool:
        if self.viable_fn is None or mask & (mask - 1) == 0:
            return True
        hit = self._viable_cache.get(mask)
        if hit is None:
            hit = self.viable_fn(mask)
            self._viable_cache[mask] = hit
        return hit

    def _block_valid(self, block: int) -> bool:
        """A seed block is invalid when a path leaves it and re-enters —
        finalizing it as a group would give a cyclic condensation."""
        if block & (block - 1) == 0:  # single node
            return True
        g = self.graph
        succ = g.succ
        reach = g.reach
        m = block
        while m:
            u_bit = m & -m
            m ^= u_bit
            t_m = succ[u_bit.bit_length() - 1] & ~block
            while t_m:
                t_bit = t_m & -t_m
                t_m ^= t_bit
                if reach[t_bit.bit_length() - 1] & block:
                    return False
        return True

    def _connectable(self, block: int) -> bool:
        """Dominance check: can ``block`` ever become a connected group?

        Groups only grow by absorbing successors, so every absorbable
        node lies in the block's reachability closure.  If the block is
        disconnected even within ``block ∪ reach(block)``, every group
        that evolves from it stays disconnected and is charged infinite
        cost at finalization — the whole subtree is dominated."""
        if block & (block - 1) == 0:
            return True
        hit = self._connectable_cache.get(block)
        if hit is not None:
            return hit
        g = self.graph
        adj = g.adj
        allowed = block | g.reachable_from_set(block)
        start = block & -block
        seen = start
        frontier = start
        while frontier:
            nxt = 0
            while frontier:
                u_bit = frontier & -frontier
                frontier ^= u_bit
                nxt |= adj[u_bit.bit_length() - 1]
            frontier = nxt & allowed & ~seen
            seen |= frontier
        ok = block & ~seen == 0
        self._connectable_cache[block] = ok
        return ok

    def _partitions(self, mask: int) -> Tuple[FrozenSet[int], ...]:
        """Valid partitions of ``mask`` into seed blocks (cached).

        Each partition is returned as a *shared* frozenset: every DP state
        reseeding from the same successor set reuses the same object, so
        its hash is computed once ever and the memo lookups on re-visits
        are as cheap as an identity-keyed dict get."""
        hit = self._part_cache.get(mask)
        if hit is not None:
            return hit
        limit = self.group_limit
        counters = self.prune_counters
        out = []
        for part in mask_partitions(mask):
            ok = True
            for block in part:
                if limit is not None and self._mask_size(block) > limit:
                    ok = False
                    break
                if not self._block_valid(block):
                    ok = False
                    break
                if not self._viable(block):
                    ok = False
                    break
                if self.prune and not self._connectable(block):
                    counters["dominance_blocks"] += 1
                    ok = False
                    break
            if ok:
                out.append(frozenset(part))
        result = tuple(out)
        self._part_cache[mask] = result
        return result

    def _succ(self, mask: int) -> int:
        """Raw successor set of a group mask (cached)."""
        hit = self._succ_cache.get(mask)
        if hit is None:
            hit = self.graph.successors_of_set(mask)
            self._succ_cache[mask] = hit
        return hit

    # -- the recurrence ------------------------------------------------------
    def _solve(
        self, groups: FrozenSet[int], done: int, frontier: int,
        ub: float = INF,
    ) -> Tuple[DPResult, bool]:
        """Value of the subproblem, as ``(result, exact)``.

        ``frontier`` is the union of the current group masks; every caller
        knows it incrementally (a merge adds one bit, a reseed starts from
        the partitioned successor set), so threading it as a parameter
        spares the hot path a per-call union loop — the majority of calls
        terminate at the memo lookup just below.

        ``ub`` is the branch-and-bound upper bound: when the subproblem's
        true value provably exceeds it, the search may return early with
        ``exact=False`` (the result's cost is then a valid lower bound —
        the true value is strictly greater).  With ``prune=False`` the
        bound stays infinite and every result is exact, reproducing the
        seed search state-for-state.
        """
        # The subproblem's value depends on the finalized set only through
        # the finalized *descendants* of the current frontier (they are the
        # successors that must stay excluded); normalising the key this way
        # collapses states that differ only in finalization history, which
        # is what keeps the paper's Table 2 state counts small.
        reach = self._reach_cache.get(frontier)
        if reach is None:
            reach = self.graph.reachable_from_set(frontier)
            self._reach_cache[frontier] = reach
        key = (groups, done & reach)
        memo = self._memo
        hit = memo.get(key)
        if hit is not None:
            if hit[1]:
                return hit
            if hit[0].cost >= ub:
                # Proven lower bound already at/above the current bound:
                # the true value cannot beat it either.
                self.prune_counters["lb_memo_hits"] += 1
                return hit
            # Stale lower bound (computed under a tighter ub): recompute.
        # Inflated bound used for every pruning decision (see _BB_SLACK);
        # the original ``ub`` is what a non-exact result records as its
        # proven lower bound.
        ub_eff = ub * (1.0 + _BB_SLACK)
        self.states_evaluated += 1
        if self.max_states is not None and self.states_evaluated > self.max_states:
            raise GroupingBudgetExceeded(
                f"DP grouping exceeded {self.max_states} states; "
                f"use a group limit (bounded incremental grouping)",
                budget="states",
                max_states=self.max_states,
                states_evaluated=self.states_evaluated,
            )
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise GroupingBudgetExceeded(
                "DP grouping exceeded its wall-clock budget; "
                "use a group limit (bounded incremental grouping)",
                budget="wall-clock",
                states_evaluated=self.states_evaluated,
            )

        g = self.graph
        placed = done | frontier
        not_placed = ~placed
        # Ready-wavefront discipline: a successor may be merged or seeded
        # only once ALL its predecessors are placed (in finalized or
        # current groups).  Every node becomes ready exactly when its last
        # predecessor's group exists, and is then a successor of that
        # group, so nothing is ever lost; meanwhile the frontier stays
        # narrow, which is what makes the paper's Table 2 state counts as
        # small as they are (e.g. 741 for the 49-stage Multiscale
        # Interpolation).
        pred = g.pred
        succ_cache = self._succ_cache
        successors_of_set = g.successors_of_set
        glist: List[int] = []
        ready_list: List[int] = []
        all_succ = 0
        for h in groups:
            raw = succ_cache.get(h)
            if raw is None:
                raw = successors_of_set(h)
                succ_cache[h] = raw
            m = raw & not_placed
            ready = 0
            while m:  # inline iter_bits: this is the hottest loop of the DP
                b = m & -m
                if pred[b.bit_length() - 1] & not_placed == 0:
                    ready |= b
                m ^= b
            glist.append(h)
            ready_list.append(ready)
            all_succ |= ready

        cost_cache = self._cost_cache
        cost_fn = self.cost_fn
        if all_succ == 0:
            total = 0.0
            for h in glist:
                c = cost_cache.get(h)
                if c is None:
                    c = cost_fn(h)
                    cost_cache[h] = c
                if c == INF:
                    total = INF
                    break
                total += c
            entry = (DPResult(total, tuple(groups)), True)
            memo[key] = entry
            return entry

        prune = self.prune
        counters = self.prune_counters
        best_cost = INF
        best_groups: Tuple[int, ...] = ()
        any_pruned = False

        # Case I: grow some group by one of its successors.
        limit = self.group_limit
        sizes = self.sizes
        unit_sizes = self._unit_sizes
        size_cache = self._size_cache
        reach_of = g.reach
        viable_fn = self.viable_fn
        viable_cache = self._viable_cache
        solve = self._solve
        for h, succ_m in zip(glist, ready_list):
            raw_succ = succ_cache[h]
            if limit is not None:
                if unit_sizes:
                    h_size = h.bit_count()
                else:
                    h_size = size_cache.get(h)
                    if h_size is None:
                        h_size = sum(sizes[i] for i in iter_bits(h))
                        size_cache[h] = h_size
            else:
                h_size = 0
            while succ_m:
                sj_bit = succ_m & -succ_m
                succ_m ^= sj_bit
                if (limit is not None
                        and h_size + sizes[sj_bit.bit_length() - 1] > limit):
                    continue
                # Cycle check: another successor t of H reaching sj means
                # the merge closes a cycle H -> t ~> sj (Algorithm 1,
                # lines 9-13).
                is_cycle = False
                t_m = raw_succ & ~sj_bit
                while t_m:
                    t_bit = t_m & -t_m
                    t_m ^= t_bit
                    if reach_of[t_bit.bit_length() - 1] & sj_bit:
                        is_cycle = True
                        break
                if is_cycle:
                    continue
                # The DAG-only check above misses paths that shortcut
                # through another *current* group's internal connectivity:
                # H -> t with t inside group G, and a different member of
                # G reaching sj (the contracted condensation H' -> G -> H'
                # is cyclic even though no DAG path connects t to sj).
                # Close the successor set under contraction of the other
                # current groups — a fixpoint over at most |groups| masks.
                # Successors of a current group are never finalized nodes
                # (every edge into a placed node originates from a node
                # placed earlier), so the check depends only on ``groups``
                # and the DAG, both part of the memo key.
                others = frontier & ~h
                if others:
                    t_all = raw_succ & ~sj_bit
                    closed = t_all
                    m2 = t_all
                    while m2:
                        t_bit = m2 & -m2
                        m2 ^= t_bit
                        closed |= reach_of[t_bit.bit_length() - 1]
                    if closed & others:
                        reach_cache = self._reach_cache
                        absorbed = 0
                        progress = True
                        while progress:
                            progress = False
                            for g2 in glist:
                                if g2 == h or g2 & absorbed:
                                    continue
                                if closed & g2:
                                    cl = reach_cache.get(g2)
                                    if cl is None:
                                        cl = g.reachable_from_set(g2)
                                        reach_cache[g2] = cl
                                    closed |= g2 | cl
                                    absorbed |= g2
                                    progress = True
                        if closed & sj_bit:
                            continue
                merged = h | sj_bit
                if viable_fn is not None and merged & (merged - 1):
                    v = viable_cache.get(merged)
                    if v is None:
                        v = viable_fn(merged)
                        viable_cache[merged] = v
                    if not v:
                        continue
                if prune and not self._connectable(merged):
                    # The merged group can never become connected: every
                    # descendant grouping is infinite-cost (exact skip).
                    counters["dominance_merges"] += 1
                    continue
                new_groups = (groups - {h}) | {merged}
                sub, sub_exact = solve(
                    new_groups,
                    done,
                    frontier | sj_bit,
                    min(ub_eff, best_cost) if prune else INF,
                )
                if sub_exact:
                    if sub.cost < best_cost:
                        best_cost, best_groups = sub.cost, sub.groups
                else:
                    counters["pruned_branches"] += 1
                    any_pruned = True

        # Case II: finalize the current groups and restart from every
        # partition of their successors.
        base = 0.0
        finalized: List[int] = []
        for h in glist:
            c = cost_cache.get(h)
            if c is None:
                c = cost_fn(h)
                cost_cache[h] = c
            if c == INF:
                base = INF
                break
            base += c
            finalized.append(h)
        if base < INF:
            if prune and base > min(ub_eff, best_cost):
                # Even a zero-cost remainder cannot beat the bound
                # (strictly: ties are still explored, preserving the
                # unpruned first-minimum tie-break).
                counters["bound_cutoffs"] += 1
                any_pruned = True
            else:
                # Inline the callee's memo lookup: every reseed child
                # shares the same (frontier, done) pair, so the key suffix
                # is loop-invariant and a hit skips the call entirely.
                reach_cache = self._reach_cache
                reach_s = reach_cache.get(all_succ)
                if reach_s is None:
                    reach_s = g.reachable_from_set(all_succ)
                    reach_cache[all_succ] = reach_s
                done_key = placed & reach_s
                for part in self._partitions(all_succ):
                    cur_ub = (min(ub_eff, best_cost) - base) if prune else INF
                    hit = memo.get((part, done_key))
                    if hit is not None and (
                        hit[1] or hit[0].cost >= cur_ub
                    ):
                        if not hit[1]:
                            counters["lb_memo_hits"] += 1
                        sub, sub_exact = hit
                    else:
                        sub, sub_exact = solve(part, placed, all_succ, cur_ub)
                    if sub_exact:
                        if base + sub.cost < best_cost:
                            best_cost = base + sub.cost
                            best_groups = tuple(finalized) + sub.groups
                    else:
                        counters["pruned_branches"] += 1
                        any_pruned = True

        # Exact when the value fits the bound (every branch that could
        # have beaten it was explored exactly) or nothing was pruned.
        # Otherwise every branch provably exceeds ``ub``: record ``ub``
        # as a strict lower bound for reuse under equal-or-tighter bounds.
        if best_cost <= ub_eff or not any_pruned:
            entry = (DPResult(best_cost, best_groups), True)
        else:
            entry = (DPResult(ub, ()), False)
        memo[key] = entry
        return entry

    def solve(self) -> DPResult:
        """Run the DP from the pipeline's source stages.

        Conceptually a dummy source vertex with zero cost feeds every real
        source (Sec. 3.1); finalizing it immediately yields the search over
        all partitions of the source set.
        """
        sources = self.graph.sources()
        ub0 = INF
        if self.prune:
            # Incumbent: the all-singletons grouping is always valid and
            # reachable by the DP, so its cost bounds the optimum from
            # above and is safe to prune against.
            total = 0.0
            for i in range(self.graph.num_nodes):
                c = self._group_cost(1 << i)
                if c == INF:
                    total = INF
                    break
                total += c
            ub0 = total
        best = DPResult(INF, ())
        for part in self._partitions(sources):
            sub, exact = self._solve(
                part,
                0,
                sources,
                min(ub0, best.cost) if self.prune else INF,
            )
            if exact and sub.cost < best.cost:
                best = sub
        return best


def dp_group(
    pipeline: Pipeline,
    machine: Machine,
    cost_model: Optional[CostModel] = None,
    group_limit: Optional[int] = None,
    max_states: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    prune: bool = False,
) -> Grouping:
    """Find the optimal grouping (per the cost model) of ``pipeline`` for
    ``machine`` — the paper's PolyMageDP with ``l = inf`` (or a single
    bounded pass when ``group_limit`` is given).

    ``max_states`` and ``time_budget_s`` are hard budgets: exceeding either
    raises :class:`GroupingBudgetExceeded` (code ``SCHED_BUDGET``).

    ``prune`` enables the lossless branch-and-bound / dominance pruning
    (see :class:`DPGrouper`); the returned grouping and cost are identical
    either way, only search statistics differ."""
    graph = StageGraph.from_pipeline(pipeline)
    stages = pipeline.stages
    cm = cost_model or CostModel(pipeline, machine)

    def cost_fn(mask: int) -> float:
        if not graph.is_connected(mask):
            return INF
        return cm.cost(stages[i] for i in iter_bits(mask)).cost

    from ..poly.alignscale import compute_group_geometry

    def viable_fn(mask: int) -> bool:
        members = [stages[i] for i in iter_bits(mask)]
        return compute_group_geometry(pipeline, members) is not None

    start = time.perf_counter()
    deadline = None if time_budget_s is None else start + time_budget_s
    grouper = DPGrouper(
        graph, cost_fn, group_limit=group_limit, max_states=max_states,
        viable_fn=viable_fn, deadline=deadline, prune=prune,
    )
    result = grouper.solve()
    elapsed = time.perf_counter() - start
    if PROFILE.enabled:
        PROFILE.add_time("dp_search", elapsed)
        PROFILE.add_counter("dp_states", grouper.states_evaluated)
        for name, n in grouper.prune_counters.items():
            PROFILE.add_counter(name, n)
    if result.cost == INF:
        raise NoValidGroupingError(
            f"no valid grouping found for pipeline {pipeline.name!r}",
            pipeline=pipeline.name,
            strategy="dp",
        )

    groups = []
    tiles = []
    for mask in result.groups:
        members = frozenset(stages[i] for i in iter_bits(mask))
        groups.append(members)
        tiles.append(cm.cost(members).tile_sizes)
    order = graph.condensation_topo_order(result.groups)
    extra: Dict[str, float] = {}
    if prune:
        extra = {k: float(v) for k, v in grouper.prune_counters.items()}
    stats = GroupingStats(
        strategy="dp" if group_limit is None else f"dp(l={group_limit})",
        enumerated=grouper.states_evaluated,
        cost_evaluations=cm.evaluations,
        time_seconds=elapsed,
        group_limit=group_limit,
        extra=extra,
    )
    return Grouping(
        pipeline=pipeline,
        groups=tuple(groups[i] for i in order),
        tile_sizes=tuple(tiles[i] for i in order),
        cost=result.cost,
        stats=stats,
    )
