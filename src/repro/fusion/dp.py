"""Dynamic-programming grouping (Sec. 3, Fig. 5, Algorithm 1).

The DP state is a set of *current* groups ``G = {H1, ..., Hn}`` (disjoint
subsets of the stage DAG) plus the set of nodes already placed in finalized
groups.  ``F(G)`` is the minimum total cost of the remainder of the DAG
under the constraint that the groups of ``G`` may only grow by absorbing
their successors (Case I) or be finalized as-is (Case II, after which the
search restarts from every partition of their successor set).  Memoizing
``F`` over states makes the search evaluate *every* valid grouping while
visiting each state once: for a linear pipeline of ``n`` stages all
``2^(n-1)`` groupings are covered in ``n (n + 1) / 2`` states — the paper's
``O(n^2)`` bound, and exactly the "groupings enumerated" counts of its
Table 2 (e.g. 10 states for the 4-stage Unsharp Mask).

Validity (Sec. 3.2): a merge of successor ``s`` into group ``H`` is
rejected when another successor ``t`` of ``H`` reaches ``s`` (the
resulting condensation would have the cycle ``H → t ⇝ s ∈ H``); seed
blocks produced by ``PARTITIONS`` are filtered by the analogous check; and
the cost function charges infinity for groups that are not connected
subgraphs (Eq. 1) or whose dependences cannot be made constant.

Node granularity is a parameter: the bounded incremental driver
(:mod:`repro.fusion.bounded`) re-runs the DP over *collapsed* graphs whose
nodes each stand for a set of original stages, so this module works with a
per-node stage-set mapping throughout.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..errors import GroupingBudgetExceeded, NoValidGroupingError
from ..graph.dag import StageGraph, iter_bits
from ..graph.partition import mask_partitions
from ..model.cost import CostModel
from ..model.machine import Machine
from .grouping import Grouping, GroupingStats

__all__ = ["DPGrouper", "DPResult", "GroupingBudgetExceeded", "dp_group"]

INF = float("inf")


class DPResult(NamedTuple):
    cost: float
    groups: Tuple[int, ...]  # final group bitmasks


class DPGrouper:
    """The DP search over one (possibly collapsed) stage graph.

    Parameters
    ----------
    graph:
        The DAG to group.
    cost_fn:
        ``mask -> float``: the cost of finalizing the node set ``mask`` as
        one group; must return ``inf`` for invalid groups.
    sizes:
        Underlying stage count per node (all 1 unless the graph is a
        collapsed one); the group limit bounds the *stage* count.
    group_limit:
        Maximum stages per group (``l`` of Sec. 5); ``None`` = unbounded.
    max_states:
        Optional safety budget on evaluated states.
    deadline:
        Optional absolute ``time.perf_counter()`` instant; exceeding it
        raises :class:`GroupingBudgetExceeded` just like ``max_states``.
    """

    def __init__(
        self,
        graph: StageGraph,
        cost_fn: Callable[[int], float],
        sizes: Optional[Sequence[int]] = None,
        group_limit: Optional[int] = None,
        max_states: Optional[int] = None,
        viable_fn: Optional[Callable[[int], bool]] = None,
        deadline: Optional[float] = None,
    ):
        self.graph = graph
        self.cost_fn = cost_fn
        self.sizes = list(sizes) if sizes is not None else [1] * graph.num_nodes
        if len(self.sizes) != graph.num_nodes:
            raise ValueError("sizes must have one entry per graph node")
        self.group_limit = group_limit
        self.max_states = max_states
        self.deadline = deadline
        # viable_fn(mask) -> False means the node set can NEVER be part of
        # a finite-cost group, nor can any superset (monotone failures:
        # reductions, data-dependent intra-edges, scaling conflicts).  Such
        # merges are pruned immediately, which is what keeps wide DAGs
        # (Camera Pipeline, Pyramid Blend) tractable.
        self.viable_fn = viable_fn
        self._memo: Dict[Tuple[FrozenSet[int], int], DPResult] = {}
        self._cost_cache: Dict[int, float] = {}
        self._viable_cache: Dict[int, bool] = {}
        self._succ_cache: Dict[int, int] = {}
        self._reach_cache: Dict[int, int] = {}
        self._part_cache: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        self.states_evaluated = 0

    # -- helpers -----------------------------------------------------------
    def _mask_size(self, mask: int) -> int:
        return sum(self.sizes[i] for i in iter_bits(mask))

    def _group_cost(self, mask: int) -> float:
        cost = self._cost_cache.get(mask)
        if cost is None:
            cost = self.cost_fn(mask)
            self._cost_cache[mask] = cost
        return cost

    def _viable(self, mask: int) -> bool:
        if self.viable_fn is None or mask & (mask - 1) == 0:
            return True
        hit = self._viable_cache.get(mask)
        if hit is None:
            hit = self.viable_fn(mask)
            self._viable_cache[mask] = hit
        return hit

    def _block_valid(self, block: int) -> bool:
        """A seed block is invalid when a path leaves it and re-enters —
        finalizing it as a group would give a cyclic condensation."""
        if block & (block - 1) == 0:  # single node
            return True
        g = self.graph
        for u in iter_bits(block):
            for t in iter_bits(g.succ[u] & ~block):
                if g.reach[t] & block:
                    return False
        return True

    def _partitions(self, mask: int) -> Tuple[Tuple[int, ...], ...]:
        """Valid partitions of ``mask`` into seed blocks (cached)."""
        hit = self._part_cache.get(mask)
        if hit is not None:
            return hit
        limit = self.group_limit
        out = []
        for part in mask_partitions(mask):
            ok = True
            for block in part:
                if limit is not None and self._mask_size(block) > limit:
                    ok = False
                    break
                if not self._block_valid(block):
                    ok = False
                    break
                if not self._viable(block):
                    ok = False
                    break
            if ok:
                out.append(part)
        result = tuple(out)
        self._part_cache[mask] = result
        return result

    def _succ(self, mask: int) -> int:
        """Raw successor set of a group mask (cached)."""
        hit = self._succ_cache.get(mask)
        if hit is None:
            hit = self.graph.successors_of_set(mask)
            self._succ_cache[mask] = hit
        return hit

    # -- the recurrence ------------------------------------------------------
    def _solve(self, groups: FrozenSet[int], done: int) -> DPResult:
        # The subproblem's value depends on the finalized set only through
        # the finalized *descendants* of the current frontier (they are the
        # successors that must stay excluded); normalising the key this way
        # collapses states that differ only in finalization history, which
        # is what keeps the paper's Table 2 state counts small.
        frontier = 0
        for h in groups:
            frontier |= h
        reach = self._reach_cache.get(frontier)
        if reach is None:
            reach = self.graph.reachable_from_set(frontier)
            self._reach_cache[frontier] = reach
        key = (groups, done & reach)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        self.states_evaluated += 1
        if self.max_states is not None and self.states_evaluated > self.max_states:
            raise GroupingBudgetExceeded(
                f"DP grouping exceeded {self.max_states} states; "
                f"use a group limit (bounded incremental grouping)",
                budget="states",
                max_states=self.max_states,
                states_evaluated=self.states_evaluated,
            )
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise GroupingBudgetExceeded(
                "DP grouping exceeded its wall-clock budget; "
                "use a group limit (bounded incremental grouping)",
                budget="wall-clock",
                states_evaluated=self.states_evaluated,
            )

        g = self.graph
        placed = done
        for h in groups:
            placed |= h
        # Ready-wavefront discipline: a successor may be merged or seeded
        # only once ALL its predecessors are placed (in finalized or
        # current groups).  Every node becomes ready exactly when its last
        # predecessor's group exists, and is then a successor of that
        # group, so nothing is ever lost; meanwhile the frontier stays
        # narrow, which is what makes the paper's Table 2 state counts as
        # small as they are (e.g. 741 for the 49-stage Multiscale
        # Interpolation).
        succ_of: Dict[int, int] = {}
        for h in groups:
            s = self._succ(h) & ~placed
            ready = 0
            for j in iter_bits(s):
                if g.pred[j] & ~placed == 0:
                    ready |= 1 << j
            succ_of[h] = ready
        all_succ = 0
        for s in succ_of.values():
            all_succ |= s

        if all_succ == 0:
            total = 0.0
            for h in groups:
                c = self._group_cost(h)
                if c == INF:
                    total = INF
                    break
                total += c
            result = DPResult(total, tuple(groups))
            self._memo[key] = result
            return result

        best_cost = INF
        best_groups: Tuple[int, ...] = ()

        # Case I: grow some group by one of its successors.
        limit = self.group_limit
        for h in groups:
            raw_succ = self._succ(h)
            for sj in iter_bits(succ_of[h]):
                if limit is not None and self._mask_size(h) + self.sizes[sj] > limit:
                    continue
                sj_bit = 1 << sj
                # Cycle check: another successor t of H reaching sj means
                # the merge closes a cycle H -> t ~> sj (Algorithm 1,
                # lines 9-13).
                is_cycle = False
                for t in iter_bits(raw_succ & ~sj_bit):
                    if g.reach[t] & sj_bit:
                        is_cycle = True
                        break
                if is_cycle:
                    continue
                if not self._viable(h | sj_bit):
                    continue
                new_groups = (groups - {h}) | {h | sj_bit}
                sub = self._solve(frozenset(new_groups), done)
                if sub.cost < best_cost:
                    best_cost, best_groups = sub.cost, sub.groups

        # Case II: finalize the current groups and restart from every
        # partition of their successors.
        base = 0.0
        finalized: List[int] = []
        for h in groups:
            c = self._group_cost(h)
            if c == INF:
                base = INF
                break
            base += c
            finalized.append(h)
        if base < INF:
            new_done = placed
            for part in self._partitions(all_succ):
                sub = self._solve(frozenset(part), new_done)
                if base + sub.cost < best_cost:
                    best_cost = base + sub.cost
                    best_groups = tuple(finalized) + sub.groups

        result = DPResult(best_cost, best_groups)
        self._memo[key] = result
        return result

    def solve(self) -> DPResult:
        """Run the DP from the pipeline's source stages.

        Conceptually a dummy source vertex with zero cost feeds every real
        source (Sec. 3.1); finalizing it immediately yields the search over
        all partitions of the source set.
        """
        sources = self.graph.sources()
        best = DPResult(INF, ())
        for part in self._partitions(sources):
            sub = self._solve(frozenset(part), 0)
            if sub.cost < best.cost:
                best = sub
        return best


def dp_group(
    pipeline: Pipeline,
    machine: Machine,
    cost_model: Optional[CostModel] = None,
    group_limit: Optional[int] = None,
    max_states: Optional[int] = None,
    time_budget_s: Optional[float] = None,
) -> Grouping:
    """Find the optimal grouping (per the cost model) of ``pipeline`` for
    ``machine`` — the paper's PolyMageDP with ``l = inf`` (or a single
    bounded pass when ``group_limit`` is given).

    ``max_states`` and ``time_budget_s`` are hard budgets: exceeding either
    raises :class:`GroupingBudgetExceeded` (code ``SCHED_BUDGET``)."""
    graph = StageGraph.from_pipeline(pipeline)
    stages = pipeline.stages
    cm = cost_model or CostModel(pipeline, machine)

    def cost_fn(mask: int) -> float:
        if not graph.is_connected(mask):
            return INF
        return cm.cost(stages[i] for i in iter_bits(mask)).cost

    from ..poly.alignscale import compute_group_geometry

    def viable_fn(mask: int) -> bool:
        members = [stages[i] for i in iter_bits(mask)]
        return compute_group_geometry(pipeline, members) is not None

    start = time.perf_counter()
    deadline = None if time_budget_s is None else start + time_budget_s
    grouper = DPGrouper(
        graph, cost_fn, group_limit=group_limit, max_states=max_states,
        viable_fn=viable_fn, deadline=deadline,
    )
    result = grouper.solve()
    elapsed = time.perf_counter() - start
    if result.cost == INF:
        raise NoValidGroupingError(
            f"no valid grouping found for pipeline {pipeline.name!r}",
            pipeline=pipeline.name,
            strategy="dp",
        )

    groups = []
    tiles = []
    for mask in result.groups:
        members = frozenset(stages[i] for i in iter_bits(mask))
        groups.append(members)
        tiles.append(cm.cost(members).tile_sizes)
    order = graph.condensation_topo_order(result.groups)
    stats = GroupingStats(
        strategy="dp" if group_limit is None else f"dp(l={group_limit})",
        enumerated=grouper.states_evaluated,
        cost_evaluations=cm.evaluations,
        time_seconds=elapsed,
        group_limit=group_limit,
    )
    return Grouping(
        pipeline=pipeline,
        groups=tuple(groups[i] for i in order),
        tile_sizes=tuple(tiles[i] for i in order),
        cost=result.cost,
        stats=stats,
    )
