"""Fusion strategies: the paper's DP model and every baseline it is
evaluated against."""

from .api import schedule_pipeline
from .autotune import AutotuneResult, AutotuneTrial, polymage_autotune
from .bounded import dp_group_bounded, inc_grouping
from .dp import DPGrouper, GroupingBudgetExceeded, dp_group
from .greedy import polymage_greedy, uniform_tile_sizes
from .grouping import (
    Grouping,
    GroupingStats,
    manual_grouping,
    singleton_grouping,
)
from .halide import halide_auto_schedule, halide_group_cost
from .native_tune import (
    NativeTrial,
    NativeTuneResult,
    have_compiler,
    measure_native,
    native_autotune,
)
from .schedcache import ScheduleCache, schedule_cache_key
from .serialize import (
    grouping_from_dict,
    grouping_to_dict,
    load_grouping,
    save_grouping,
)

__all__ = [
    "native_autotune",
    "measure_native",
    "have_compiler",
    "NativeTrial",
    "NativeTuneResult",
    "grouping_to_dict",
    "grouping_from_dict",
    "save_grouping",
    "load_grouping",
    "ScheduleCache",
    "schedule_cache_key",
    "schedule_pipeline",
    "dp_group",
    "dp_group_bounded",
    "inc_grouping",
    "DPGrouper",
    "GroupingBudgetExceeded",
    "polymage_greedy",
    "uniform_tile_sizes",
    "polymage_autotune",
    "AutotuneResult",
    "AutotuneTrial",
    "halide_auto_schedule",
    "halide_group_cost",
    "Grouping",
    "GroupingStats",
    "manual_grouping",
    "singleton_grouping",
]
