"""Persistent schedule cache (``--schedule-cache DIR``).

The ROADMAP's service scenario schedules the same pipelines over and over
— across processes, so the in-memory memoisation of :class:`CostModel`
and :class:`PipelineAnalysis` does not help.  This module stores finished
groupings on disk, keyed by everything the scheduling *decision* depends
on:

* the pipeline structure (name, stage count, stage names in topological
  order — the same facts :func:`repro.fusion.serialize.pipeline_digest`
  certifies),
* the owning **backend** and the full machine identity — backend name,
  machine name, core count, :func:`repro.backend.machine_digest` over
  every field of the description (cache sizes / shared-memory and
  register budgets, ``INNERMOSTTILESIZE``), and the four cost weights
  of Table 1 — so a CPU schedule is never served to a GPU request or
  vice versa,
* the strategy and its parameters (group limit, incremental ramp, greedy
  knobs),
* the concrete **parameter bindings and domain extents**
  (:func:`extents_digest`) — ``COMPUTETILESIZES`` and the overlap terms
  of the cost model depend on extents, so a schedule computed for a
  ``--scale 0.1`` build must never be silently reused at ``--scale 1.0``
  even though both builds share stage names and counts.

A cache hit deserialises the stored grouping through
:func:`repro.fusion.serialize.grouping_from_dict`, which re-validates the
pipeline structure digest — a stale entry (stage renames, different build
parameters) fails with ``SCHEDULE_STALE`` exactly like a stale
``--schedule`` file would, and is evicted and re-scheduled instead of
being silently applied.  A hit costs one JSON parse: zero cost-model
evaluations, zero DP states.

Cache files are written atomically (temp file + ``os.replace``; the temp
name carries the pid *and* a per-call unique suffix, so concurrent
threads of one process storing the same key never interleave writes
through a shared temp file) so a killed process never leaves a truncated
entry behind.  Temp files a killed writer *did* leave behind (it died
between ``open`` and ``os.replace``) are age-swept the next time the
cache directory is opened.

With ``repro.obs`` metrics collection on, every cache event is exported
as ``repro_schedule_cache_events_total`` with
``event=hit|miss|eviction|store|tmp_sweep`` alongside the per-instance
``hits``/``misses``/``evictions`` counters.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from typing import Iterable, Optional

from ..dsl.pipeline import Pipeline
from ..errors import ScheduleFormatError, ScheduleStaleError
from ..model.weights import CostWeights
from ..obs import METRICS
from .grouping import Grouping
from .serialize import grouping_from_dict, grouping_to_dict

__all__ = ["ScheduleCache", "schedule_cache_key", "extents_digest"]

#: process-wide monotonic counter for unique temp-file suffixes
_TMP_COUNTER = itertools.count()


def extents_digest(pipeline: Pipeline) -> str:
    """Digest of the concrete geometry a scheduling decision depends on:
    parameter bindings, per-stage domain bounds, and input image shapes.

    Two builds of the same pipeline at different scales share stage names
    and counts but differ here — and ``COMPUTETILESIZES`` (Algorithm 2)
    and the cost model's overlap/liveout terms are functions of extents,
    so their schedules must not be interchangeable.
    """
    h = hashlib.sha256()
    for name in sorted(pipeline.env):
        h.update(f"param:{name}={pipeline.env[name]}\0".encode())
    for stage in pipeline.stages:
        h.update(f"dom:{stage.name}:{pipeline.domain(stage)!r}\0".encode())
    for img in pipeline.images:
        h.update(
            f"img:{img.name}:{pipeline.image_shape(img)!r}\0".encode()
        )
    return h.hexdigest()[:16]


def schedule_cache_key(
    pipeline: Pipeline,
    machine,
    strategy: str = "dp",
    ncores: Optional[int] = None,
    weights: Optional[CostWeights] = None,
    params: Iterable[str] = (),
) -> str:
    """Digest of everything a scheduling decision depends on.

    ``machine`` may be any registered machine description (CPU
    :class:`~repro.model.machine.Machine` or
    :class:`~repro.model.machine.GpuMachine`): the key folds in the
    owning backend's name and :func:`repro.backend.machine_digest` —
    *every* field of the description — so a schedule computed under one
    backend's tile hierarchy (or one capacity/weight configuration) can
    never be served for another.

    ``params`` carries strategy-specific knobs as ``"name=value"``
    strings; budgets (``max_states``, wall clocks) are deliberately *not*
    part of the key — a cached entry only exists if some run completed
    within its budgets, and the chosen grouping does not depend on them.
    """
    from ..backend import backend_name_for, machine_digest

    w = weights or machine.weights
    h = hashlib.sha256()
    h.update(f"pipeline:{pipeline.name}\0".encode())
    h.update(f"stages:{pipeline.num_stages}\0".encode())
    for stage in pipeline.stages:
        h.update(stage.name.encode())
        h.update(b"\0")
    h.update(f"extents:{extents_digest(pipeline)}\0".encode())
    h.update(f"backend:{backend_name_for(machine)}\0".encode())
    h.update(f"machine:{machine.name}\0".encode())
    h.update(f"mdigest:{machine_digest(machine)}\0".encode())
    h.update(f"cores:{ncores or machine.num_cores}\0".encode())
    h.update(f"weights:{w.w1!r}:{w.w2!r}:{w.w3!r}:{w.w4!r}\0".encode())
    h.update(f"strategy:{strategy}\0".encode())
    for p in params:
        h.update(f"{p}\0".encode())
    return h.hexdigest()[:20]


#: temp files from :meth:`ScheduleCache.store` older than this are
#: presumed orphaned by a crashed/killed writer and swept on open
STALE_TMP_S = 3600.0


class ScheduleCache:
    """A directory of serialized schedules keyed by
    :func:`schedule_cache_key`."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0  # stale or unreadable entries removed
        self.swept_tmp = self._sweep_tmp()

    def _sweep_tmp(self, stale_s: float = STALE_TMP_S) -> int:
        """Remove ``*.tmp.*`` files a killed writer never renamed.

        A writer that dies between ``open`` and ``os.replace`` leaves
        its temp file behind forever — nothing else ever references the
        unique name.  Age-gating the sweep (mtime older than
        ``stale_s``) keeps it safe against writers in other processes
        that are mid-store right now; returns the number removed.
        """
        removed = 0
        now = time.time()
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if ".tmp." not in name:
                continue
            path = os.path.join(self.directory, name)
            try:
                if now - os.path.getmtime(path) > stale_s:
                    os.remove(path)
                    removed += 1
            except OSError:
                continue
        if removed:
            self._event("tmp_sweep")
        return removed

    def _path(self, pipeline: Pipeline, key: str) -> str:
        return os.path.join(self.directory, f"{pipeline.name}-{key}.json")

    def load(
        self,
        pipeline: Pipeline,
        key: str,
        backend: Optional[str] = None,
    ) -> Optional[Grouping]:
        """The cached grouping, or ``None`` on a miss.  Stale or corrupt
        entries — including entries whose recorded extent digest no
        longer matches the pipeline's concrete parameter bindings and
        domain extents, or (when ``backend`` is given) whose recorded
        backend differs — are evicted and reported as misses."""
        path = self._path(pipeline, key)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            self._event("miss")
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(path)
            return None
        if data.get("extents") != extents_digest(pipeline):
            # Entry was written for a different concrete geometry (or by
            # a pre-extent-digest build): the stored tile sizes are not
            # trustworthy for this pipeline instance.
            self._evict(path)
            return None
        if backend is not None and data.get("backend") != backend:
            # Entry was written for a different backend's tile hierarchy
            # — or by a pre-backend build that recorded none (the same
            # migration shape as the extents-digest fix above): its tile
            # sizes answer a different machine model's question.
            self._evict(path)
            return None
        try:
            grouping = grouping_from_dict(pipeline, data)
        except (ScheduleStaleError, ScheduleFormatError, KeyError, ValueError):
            self._evict(path)
            return None
        self.hits += 1
        self._event("hit")
        return grouping

    def store(
        self, grouping: Grouping, key: str, backend: Optional[str] = None,
    ) -> str:
        """Atomically write ``grouping``; returns the entry path.

        ``backend`` records which backend's tile hierarchy produced the
        schedule; a backend-aware :meth:`load` evicts entries that
        recorded a different one (or none).

        The temp-file name includes a process-wide unique suffix on top
        of the pid: two threads of one process storing the same key get
        distinct temp files, so neither can truncate or interleave the
        other's half-written entry before its ``os.replace``.
        """
        path = self._path(grouping.pipeline, key)
        tmp = f"{path}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}"
        data = grouping_to_dict(grouping)
        data["extents"] = extents_digest(grouping.pipeline)
        if backend is not None:
            data["backend"] = backend
        with open(tmp, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self._event("store")
        return path

    def _evict(self, path: str) -> None:
        self.misses += 1
        self.evictions += 1
        self._event("miss")
        self._event("eviction")
        try:
            os.remove(path)
        except OSError:
            pass

    @staticmethod
    def _event(event: str) -> None:
        if METRICS.enabled:
            METRICS.inc("repro_schedule_cache_events_total", event=event)
