"""Grouping value types shared by every fusion strategy.

A *grouping* partitions the pipeline's stages into disjoint groups; each
group is fused (its tile-space loops merged, intermediates kept in per-tile
scratch buffers) and overlap-tiled with its own tile sizes.  Every strategy
— the paper's DP model, PolyMage's greedy heuristic, the auto-tuner,
Halide's auto-scheduler, and manual schedules — produces a
:class:`Grouping`, which the runtime executes and the performance model
prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..graph.dag import StageGraph, mask_of

__all__ = ["Grouping", "GroupingStats", "manual_grouping",
           "singleton_grouping"]

Group = FrozenSet[Function]


@dataclass
class GroupingStats:
    """Bookkeeping about how a grouping was found (Table 2 columns)."""

    strategy: str = ""
    enumerated: int = 0  # groupings (DP states) enumerated
    cost_evaluations: int = 0  # distinct groups priced by the cost model
    time_seconds: float = 0.0
    group_limit: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Grouping:
    """A partition of a pipeline's stages into fused groups with tile
    sizes.

    Attributes
    ----------
    pipeline:
        The pipeline being scheduled.
    groups:
        Disjoint stage sets covering every pipeline stage, in topological
        order of the condensed group DAG.
    tile_sizes:
        Per group (parallel to ``groups``), the tile size per group
        dimension of that group's common grid.
    cost:
        The scheduling objective value (meaning depends on the strategy:
        model cost for the DP, estimated milliseconds for the tuners).
    stats:
        Search statistics.
    """

    pipeline: Pipeline
    groups: Tuple[Group, ...]
    tile_sizes: Tuple[Tuple[int, ...], ...]
    cost: float
    stats: GroupingStats = field(default_factory=GroupingStats)

    def __post_init__(self):
        if len(self.groups) != len(self.tile_sizes):
            raise ValueError("one tile-size tuple per group is required")
        covered: set = set()
        for g in self.groups:
            if not g:
                raise ValueError("empty group")
            if covered & g:
                raise ValueError("groups overlap")
            covered |= g
        if covered != set(self.pipeline.stages):
            missing = {s.name for s in self.pipeline.stages} - {
                s.name for s in covered
            }
            raise ValueError(f"grouping does not cover stages: {sorted(missing)}")

    # -- queries ---------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of(self, stage: Function) -> int:
        for i, g in enumerate(self.groups):
            if stage in g:
                return i
        raise KeyError(stage.name)

    def group_names(self) -> List[List[str]]:
        """Stage names per group, stages in pipeline topological order."""
        order = {s: i for i, s in enumerate(self.pipeline.stages)}
        return [
            [s.name for s in sorted(g, key=order.__getitem__)]
            for g in self.groups
        ]

    def is_valid(self) -> bool:
        """Groups are connected and the condensed graph is acyclic."""
        graph = StageGraph.from_pipeline(self.pipeline)
        index = {s: i for i, s in enumerate(self.pipeline.stages)}
        masks = [mask_of(index[s] for s in g) for g in self.groups]
        return all(graph.is_connected(m) for m in masks) and (
            graph.condensation_is_acyclic(masks)
        )

    def describe(self) -> str:
        """Human-readable multi-line description."""
        lines = [f"Grouping of {self.pipeline.name!r} ({self.stats.strategy}):"]
        for names, tiles in zip(self.group_names(), self.tile_sizes):
            lines.append(f"  {{{', '.join(names)}}}  tiles={list(tiles)}")
        lines.append(f"  cost = {self.cost:.6g}")
        return "\n".join(lines)


def singleton_grouping(pipeline: Pipeline) -> Grouping:
    """The no-fusion grouping: every stage its own group, one tile per
    stage covering the full domain — semantically the reference execution,
    so it never needs the cost model, the DP, or geometry to *succeed*.
    The final tier of the resilience layer's degradation chain
    (:func:`repro.resilience.fallback.resilient_schedule`)."""
    from ..poly.alignscale import compute_group_geometry

    groups: List[Group] = []
    tiles: List[Tuple[int, ...]] = []
    for stage in pipeline.stages:
        members: Group = frozenset({stage})
        try:
            geom = compute_group_geometry(pipeline, members)
            extents = geom.grid_extents if geom is not None else ()
        except Exception:  # geometry failure must not block the last tier
            extents = ()
        groups.append(members)
        tiles.append(tuple(extents))
    # cost 0.0 = "not priced" (pricing could itself fail); keeps the
    # grouping JSON-serializable where inf would not be.
    return Grouping(
        pipeline=pipeline,
        groups=tuple(groups),
        tile_sizes=tuple(tiles),
        cost=0.0,
        stats=GroupingStats(strategy="no-fusion"),
    )


def manual_grouping(
    pipeline: Pipeline,
    group_specs: Sequence[Sequence[str]],
    tile_specs: Sequence[Sequence[int]],
    cost: float = 0.0,
    strategy: str = "manual",
) -> Grouping:
    """Build a grouping from stage-name lists and explicit tile sizes —
    how the H-manual expert schedules are expressed."""
    if len(group_specs) != len(tile_specs):
        raise ValueError("one tile-size list per group is required")
    groups: List[Group] = []
    for spec in group_specs:
        groups.append(frozenset(pipeline.stage_by_name(n) for n in spec))
    # Order groups topologically so execution can follow list order.
    graph = StageGraph.from_pipeline(pipeline)
    index = {s: i for i, s in enumerate(pipeline.stages)}
    masks = [mask_of(index[s] for s in g) for g in groups]
    order = graph.condensation_topo_order(masks)
    return Grouping(
        pipeline=pipeline,
        groups=tuple(groups[i] for i in order),
        tile_sizes=tuple(tuple(tile_specs[i]) for i in order),
        cost=cost,
        stats=GroupingStats(strategy=strategy),
    )
