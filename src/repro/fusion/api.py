"""One-call scheduling entry point.

:func:`schedule_pipeline` dispatches to every strategy this repository
implements:

========================  ====================================================
strategy                  meaning
========================  ====================================================
``"dp"``                  the paper's PolyMageDP (unbounded DP, Sec. 3)
``"dp-bounded"``          one bounded DP pass (``group_limit`` required)
``"dp-incremental"``      Algorithm 3 (bounded passes with collapsing)
``"greedy"``              PolyMage's greedy heuristic at fixed parameters
``"polymage-auto"``       PolyMage-A: greedy + auto-tuning (Sec. 6.1)
``"halide-auto"``         H-auto: Halide's greedy auto-scheduler (Sec. 2.3)
``"no-fusion"``           every stage its own group, untiled semantics
========================  ====================================================

For production paths that must *never* fail to schedule, see
:func:`repro.resilience.resilient_schedule`, which walks the degradation
chain ``dp → dp-incremental → greedy → no-fusion`` under hard budgets.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..dsl.pipeline import Pipeline
from ..model.cost import CostModel
from ..model.machine import Machine
from ..obs import METRICS, TRACE
from .autotune import polymage_autotune
from .bounded import dp_group_bounded, inc_grouping
from .dp import dp_group
from .greedy import polymage_greedy
from .grouping import Grouping, singleton_grouping
from .halide import halide_auto_schedule
from .schedcache import ScheduleCache, schedule_cache_key

__all__ = ["schedule_pipeline"]

#: strategies whose result is deterministic in (pipeline, machine,
#: weights, params) and therefore cacheable across processes
_CACHEABLE = ("dp", "dp-bounded", "dp-incremental", "greedy")

_STRATEGIES = (
    "dp",
    "dp-bounded",
    "dp-incremental",
    "greedy",
    "polymage-auto",
    "halide-auto",
    "no-fusion",
)


def schedule_pipeline(
    pipeline: Pipeline,
    machine: Machine,
    strategy: str = "dp",
    *,
    group_limit: Optional[int] = None,
    initial_limit: int = 8,
    step: int = 4,
    tile_size: int = 64,
    overlap_tolerance: float = 0.4,
    nthreads: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    max_states: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    prune: bool = False,
    schedule_cache: Optional[Union[str, ScheduleCache]] = None,
) -> Grouping:
    """Schedule ``pipeline`` for ``machine`` with the chosen strategy.

    See the module docstring for the strategy catalogue; keyword arguments
    not relevant to the chosen strategy are ignored.  ``max_states`` and
    ``time_budget_s`` bound the DP strategies; exceeding either raises
    ``SCHED_BUDGET`` (:class:`repro.errors.GroupingBudgetExceeded`).

    ``prune`` turns on the lossless branch-and-bound / dominance pruning
    of the DP strategies (identical result, fewer explored states).

    ``schedule_cache`` (a directory path or a
    :class:`~repro.fusion.schedcache.ScheduleCache`) makes deterministic
    strategies persistent across processes: a hit returns the stored
    grouping without any cost-model evaluation, a stale entry is evicted
    and re-scheduled.
    """
    from ..backend import backend_name_for

    observing = METRICS.enabled
    t0 = time.perf_counter() if observing else 0.0
    with TRACE.span(
        "schedule_pipeline", pipeline=pipeline.name, strategy=strategy,
        backend=backend_name_for(machine),
    ) as span:
        grouping = _schedule_pipeline(
            pipeline, machine, strategy,
            group_limit=group_limit, initial_limit=initial_limit,
            step=step, tile_size=tile_size,
            overlap_tolerance=overlap_tolerance, nthreads=nthreads,
            cost_model=cost_model, max_states=max_states,
            time_budget_s=time_budget_s, prune=prune,
            schedule_cache=schedule_cache, span=span,
        )
    if observing:
        METRICS.observe(
            "repro_schedule_seconds", time.perf_counter() - t0,
            strategy=strategy,
        )
    return grouping


def _schedule_pipeline(
    pipeline: Pipeline,
    machine: Machine,
    strategy: str,
    *,
    group_limit: Optional[int],
    initial_limit: int,
    step: int,
    tile_size: int,
    overlap_tolerance: float,
    nthreads: Optional[int],
    cost_model: Optional[CostModel],
    max_states: Optional[int],
    time_budget_s: Optional[float],
    prune: bool,
    schedule_cache: Optional[Union[str, ScheduleCache]],
    span,
) -> Grouping:
    from ..backend import backend_name_for

    cache: Optional[ScheduleCache] = None
    key = ""
    if schedule_cache is not None and strategy in _CACHEABLE:
        cache = (
            schedule_cache
            if isinstance(schedule_cache, ScheduleCache)
            else ScheduleCache(schedule_cache)
        )
        params = []
        if strategy in ("dp", "dp-bounded"):
            params.append(f"group_limit={group_limit}")
        elif strategy == "dp-incremental":
            params.append(f"initial_limit={initial_limit}")
            params.append(f"step={step}")
        elif strategy == "greedy":
            params.append(f"tile_size={tile_size}")
            params.append(f"overlap_tolerance={overlap_tolerance!r}")
        key = schedule_cache_key(
            pipeline, machine, strategy=strategy, params=params,
        )
        hit = cache.load(pipeline, key, backend=backend_name_for(machine))
        if hit is not None:
            span.set(cache="hit")
            return hit
        span.set(cache="miss")

    if strategy == "dp":
        grouping = dp_group(
            pipeline, machine, cost_model=cost_model,
            group_limit=group_limit, max_states=max_states,
            time_budget_s=time_budget_s, prune=prune,
        )
    elif strategy == "dp-bounded":
        if group_limit is None:
            raise ValueError("dp-bounded requires group_limit")
        grouping = dp_group_bounded(
            pipeline, machine, group_limit,
            cost_model=cost_model, max_states=max_states,
            time_budget_s=time_budget_s, prune=prune,
        )
    elif strategy == "dp-incremental":
        grouping = inc_grouping(
            pipeline, machine, initial_limit=initial_limit, step=step,
            cost_model=cost_model, max_states=max_states,
            time_budget_s=time_budget_s, prune=prune,
        )
    elif strategy == "greedy":
        grouping = polymage_greedy(
            pipeline, machine, tile_size=tile_size,
            overlap_tolerance=overlap_tolerance,
        )
    elif strategy == "polymage-auto":
        return polymage_autotune(pipeline, machine, nthreads=nthreads).best
    elif strategy == "halide-auto":
        return halide_auto_schedule(pipeline, machine)
    elif strategy == "no-fusion":
        return singleton_grouping(pipeline)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
        )
    if cache is not None:
        cache.store(grouping, key, backend=backend_name_for(machine))
    return grouping
