"""Bounded incremental grouping (Sec. 5, Algorithm 3).

The unbounded DP can take exponential time on wide DAGs.  The incremental
variant first runs the DP with a *group limit* ``l`` (no group may exceed
``l`` stages), collapses the resulting groups into single vertices, and
repeats on the collapsed graph with a multiplicatively increased limit
until the limit covers the whole pipeline (the last pass is effectively
unbounded).  Because collapsed nodes carry their underlying stage sets,
every pass evaluates real stage-level groups with the same cost model.

This is how the paper keeps the Camera Pipeline (32 stages) and Pyramid
Blend (44 stages) schedulable: Table 2 shows the grouping time dropping
from tens of seconds at ``l = inf`` to well under a second at ``l = 8``.
"""

from __future__ import annotations

import time
from typing import Callable, FrozenSet, List, Optional, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..errors import NoValidGroupingError
from ..graph.dag import StageGraph, iter_bits
from ..model.cost import CostModel
from ..model.machine import Machine
from .dp import DPGrouper, INF, dp_group
from .grouping import Grouping, GroupingStats

__all__ = ["dp_group_bounded", "inc_grouping"]

StageSet = FrozenSet[Function]


def dp_group_bounded(
    pipeline: Pipeline,
    machine: Machine,
    group_limit: int,
    cost_model: Optional[CostModel] = None,
    max_states: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    prune: bool = False,
) -> Grouping:
    """One DP pass with group sizes bounded by ``group_limit``
    (``DP-GROUPING-BOUNDED``)."""
    if group_limit < 1:
        raise ValueError("group_limit must be at least 1")
    return dp_group(
        pipeline,
        machine,
        cost_model=cost_model,
        group_limit=group_limit,
        max_states=max_states,
        time_budget_s=time_budget_s,
        prune=prune,
    )


def _collapse(
    graph: StageGraph,
    node_stages: List[StageSet],
    group_masks: Tuple[int, ...],
) -> Tuple[StageGraph, List[StageSet]]:
    """Contract each group of nodes into a single vertex of a new graph."""
    order = graph.condensation_topo_order(group_masks)
    ordered = [group_masks[i] for i in order]
    owner = {}
    new_stages: List[StageSet] = []
    for gi, gmask in enumerate(ordered):
        members: StageSet = frozenset()
        for node in iter_bits(gmask):
            members |= node_stages[node]
            owner[node] = gi
        new_stages.append(members)
    edges = set()
    for u in range(graph.num_nodes):
        for v in iter_bits(graph.succ[u]):
            gu, gv = owner[u], owner[v]
            if gu != gv:
                edges.add((gu, gv))
    labels = ["+".join(sorted(s.name for s in ns)) for ns in new_stages]
    return StageGraph(len(new_stages), sorted(edges), labels), new_stages


def inc_grouping(
    pipeline: Pipeline,
    machine: Machine,
    initial_limit: int = 8,
    step: int = 4,
    cost_model: Optional[CostModel] = None,
    max_states: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    prune: bool = False,
) -> Grouping:
    """``INC-GROUPING``: iterate bounded DP passes, collapsing groups into
    vertices between passes, multiplying the limit by ``step`` each time.

    The final pass runs with no group limit on the (much smaller)
    collapsed graph, matching the paper's usage of obtaining a grouping
    with ``l <= 32`` and re-running with ``l = inf``.
    """
    if initial_limit < 1:
        raise ValueError("initial_limit must be at least 1")
    if step < 2:
        raise ValueError("step must be at least 2")

    cm = cost_model or CostModel(pipeline, machine)
    stages = pipeline.stages
    n = len(stages)

    graph = StageGraph.from_pipeline(pipeline)
    node_stages: List[StageSet] = [frozenset({s}) for s in stages]
    limit: Optional[int] = initial_limit

    start = time.perf_counter()
    deadline = None if time_budget_s is None else start + time_budget_s
    total_states = 0
    iterations = 0
    per_iteration: List[int] = []
    prune_totals: dict = {}
    final_masks: Tuple[int, ...] = tuple(1 << i for i in range(n))

    while True:
        def cost_fn(mask: int, _graph=graph, _ns=node_stages) -> float:
            if not _graph.is_connected(mask):
                return INF
            members: StageSet = frozenset()
            for i in iter_bits(mask):
                members |= _ns[i]
            return cm.cost(members).cost

        from ..poly.alignscale import compute_group_geometry

        def viable_fn(mask: int, _ns=node_stages) -> bool:
            members: StageSet = frozenset()
            for i in iter_bits(mask):
                members |= _ns[i]
            return compute_group_geometry(pipeline, members) is not None

        sizes = [len(ns) for ns in node_stages]
        effective_limit = None if (limit is None or limit >= n) else limit
        grouper = DPGrouper(
            graph,
            cost_fn,
            sizes=sizes,
            group_limit=effective_limit,
            max_states=max_states,
            viable_fn=viable_fn,
            deadline=deadline,
            # Pruning only pays on the *unbounded* final pass, where the
            # search can explode and the branch-and-bound incumbent cuts
            # deep.  On bounded passes the capped group sizes keep costs
            # close to the all-singletons incumbent, so the bound rarely
            # fires while its stale-lower-bound recomputations *add*
            # states — measurably slower on every registered benchmark.
            # Either setting returns the identical grouping (losslessness),
            # so this is purely a scheduling-time decision.
            prune=prune and effective_limit is None,
        )
        result = grouper.solve()
        total_states += grouper.states_evaluated
        per_iteration.append(grouper.states_evaluated)
        for name, n_hits in grouper.prune_counters.items():
            prune_totals[name] = prune_totals.get(name, 0) + n_hits
        iterations += 1
        if result.cost == INF:
            raise NoValidGroupingError(
                f"no valid grouping found for pipeline {pipeline.name!r} "
                f"at group limit {effective_limit}",
                pipeline=pipeline.name,
                strategy="dp-incremental",
                group_limit=effective_limit,
            )
        final_masks = result.groups

        if effective_limit is None:
            break
        graph, node_stages = _collapse(graph, node_stages, result.groups)
        final_masks = tuple(1 << i for i in range(graph.num_nodes))
        limit = limit * step

    elapsed = time.perf_counter() - start

    order = graph.condensation_topo_order(final_masks)
    groups: List[StageSet] = []
    tiles: List[Tuple[int, ...]] = []
    total_cost = 0.0
    for i in order:
        members: StageSet = frozenset()
        for node in iter_bits(final_masks[i]):
            members |= node_stages[node]
        gc = cm.cost(members)
        groups.append(members)
        tiles.append(gc.tile_sizes)
        total_cost += gc.cost

    stats = GroupingStats(
        strategy=f"dp-inc(l0={initial_limit},step={step})",
        enumerated=total_states,
        cost_evaluations=cm.evaluations,
        time_seconds=elapsed,
        group_limit=initial_limit,
        extra={
            **{f"states_iter{i}": float(s) for i, s in enumerate(per_iteration)},
            **({k: float(v) for k, v in prune_totals.items()} if prune else {}),
        },
    )
    return Grouping(
        pipeline=pipeline,
        groups=tuple(groups),
        tile_sizes=tuple(tiles),
        cost=total_cost,
        stats=stats,
    )
