"""PolyMage's original greedy fusion heuristic (Sec. 2.2).

Starting from singleton groups, the heuristic repeatedly merges a group
into its *single* child (successor) group — the single-child condition
guarantees no cycle can form — provided that

1. the dependences between the two groups can be made constant by scaling
   and alignment, and
2. the redundant (overlap) computation of the merged group, as a fraction
   of its tile volume at the given uniform tile size, stays below the
   *overlap tolerance*.

Candidate groups are visited in decreasing order of their size estimates.
The tile size and the tolerance are exactly the two knobs PolyMage's
auto-tuner sweeps (:mod:`repro.fusion.autotune`), and the same tile size is
used for every group — one of the limitations the paper's model removes.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from ..dsl.function import Function
from ..dsl.pipeline import Pipeline
from ..model.machine import Machine
from ..poly.alignscale import GroupGeometry, compute_group_geometry
from ..poly.overlap import overlap_size, tile_volume
from .grouping import Grouping, GroupingStats

__all__ = ["polymage_greedy", "uniform_tile_sizes"]

StageSet = FrozenSet[Function]


def uniform_tile_sizes(geom: GroupGeometry, tile_size: int) -> Tuple[int, ...]:
    """PolyMage's uniform tiling: the last two dimensions get the tuned
    ``tile_size``; outer dimensions (e.g. a 3-wide colour dimension) stay
    untiled (tile = full extent)."""
    extents = geom.grid_extents
    ndim = geom.ndim
    tiled = {ndim - 1, ndim - 2} if ndim >= 2 else {ndim - 1}
    return tuple(
        min(extents[g], tile_size) if g in tiled else extents[g]
        for g in range(ndim)
    )


def polymage_greedy(
    pipeline: Pipeline,
    machine: Machine,
    tile_size: int = 64,
    overlap_tolerance: float = 0.4,
) -> Grouping:
    """Run the greedy heuristic with one (tile size, tolerance) setting."""
    if tile_size < 1:
        raise ValueError("tile_size must be positive")
    if overlap_tolerance < 0:
        raise ValueError("overlap_tolerance must be non-negative")

    groups: List[StageSet] = [frozenset({s}) for s in pipeline.stages]
    merges = 0
    evaluated = 0

    def child_groups(g: StageSet) -> List[int]:
        kids = set()
        for s in g:
            for c in pipeline.consumers(s):
                if c not in g:
                    kids.add(_owner(groups, c))
        return sorted(kids)

    while True:
        merged = False
        # Candidates: groups with exactly one child group, largest first.
        sized = sorted(
            range(len(groups)),
            key=lambda i: sum(pipeline.domain_size(s) for s in groups[i]),
            reverse=True,
        )
        for gi in sized:
            kids = child_groups(groups[gi])
            if len(kids) != 1:
                continue
            candidate = groups[gi] | groups[kids[0]]
            evaluated += 1
            geom = compute_group_geometry(pipeline, candidate)
            if geom is None:
                continue  # dependences cannot be made constant
            tiles = uniform_tile_sizes(geom, tile_size)
            vol = tile_volume(geom, tiles)
            frac = overlap_size(geom, tiles) / vol if vol else float("inf")
            if frac >= overlap_tolerance:
                continue
            ki = kids[0]
            keep = [
                g for j, g in enumerate(groups) if j not in (gi, ki)
            ]
            groups = keep + [candidate]
            merges += 1
            merged = True
            break
        if not merged:
            break

    # Order groups topologically and attach the uniform tile sizes.
    from ..graph.dag import StageGraph, mask_of

    graph = StageGraph.from_pipeline(pipeline)
    index = {s: i for i, s in enumerate(pipeline.stages)}
    masks = [mask_of(index[s] for s in g) for g in groups]
    order = graph.condensation_topo_order(masks)

    ordered: List[StageSet] = []
    tiles_out: List[Tuple[int, ...]] = []
    for i in order:
        g = groups[i]
        geom = compute_group_geometry(pipeline, g)
        if geom is None:
            # A singleton reduction has no geometry requirement; tile on
            # its own output domain.
            stage = next(iter(g))
            extents = pipeline.domain_extents(stage)
            tiles_out.append(
                tuple(min(e, tile_size) for e in extents)
            )
        else:
            tiles_out.append(uniform_tile_sizes(geom, tile_size))
        ordered.append(g)

    stats = GroupingStats(
        strategy=f"polymage-greedy(T={tile_size},tol={overlap_tolerance})",
        enumerated=evaluated,
        cost_evaluations=evaluated,
        extra={"merges": float(merges)},
    )
    return Grouping(
        pipeline=pipeline,
        groups=tuple(ordered),
        tile_sizes=tuple(tiles_out),
        cost=0.0,
        stats=stats,
    )


def _owner(groups: List[StageSet], stage: Function) -> int:
    for i, g in enumerate(groups):
        if stage in g:
            return i
    raise KeyError(stage.name)
