"""Schedule serialization: save and reload groupings as JSON.

The DP search on a large pipeline takes seconds; production use wants to
schedule once and reuse.  A serialized grouping records the stage
partition, per-group tile sizes, the objective value and the search
statistics; loading validates it against the pipeline (stage names must
match exactly), so a schedule cannot silently be applied to a different
program.
"""

from __future__ import annotations

import json
from typing import Dict, Union

from ..dsl.pipeline import Pipeline
from .grouping import Grouping, GroupingStats, manual_grouping

__all__ = ["grouping_to_dict", "grouping_from_dict", "save_grouping",
           "load_grouping"]

_FORMAT_VERSION = 1


def grouping_to_dict(grouping: Grouping) -> Dict:
    """A JSON-serializable description of ``grouping``."""
    return {
        "format": _FORMAT_VERSION,
        "pipeline": grouping.pipeline.name,
        "num_stages": grouping.pipeline.num_stages,
        "groups": grouping.group_names(),
        "tile_sizes": [list(t) for t in grouping.tile_sizes],
        "cost": grouping.cost,
        "stats": {
            "strategy": grouping.stats.strategy,
            "enumerated": grouping.stats.enumerated,
            "cost_evaluations": grouping.stats.cost_evaluations,
            "time_seconds": grouping.stats.time_seconds,
            "group_limit": grouping.stats.group_limit,
        },
    }


def grouping_from_dict(pipeline: Pipeline, data: Dict) -> Grouping:
    """Rebuild a grouping against ``pipeline``; validates stage coverage."""
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format {data.get('format')!r}"
        )
    if data.get("pipeline") != pipeline.name:
        raise ValueError(
            f"schedule was made for pipeline {data.get('pipeline')!r}, "
            f"not {pipeline.name!r}"
        )
    if data.get("num_stages") != pipeline.num_stages:
        raise ValueError(
            f"schedule expects {data.get('num_stages')} stages, pipeline "
            f"has {pipeline.num_stages} (different build parameters?)"
        )
    grouping = manual_grouping(
        pipeline,
        data["groups"],
        data["tile_sizes"],
        cost=float(data.get("cost", 0.0)),
        strategy=data.get("stats", {}).get("strategy", "loaded"),
    )
    stats = data.get("stats", {})
    grouping.stats.enumerated = int(stats.get("enumerated", 0))
    grouping.stats.cost_evaluations = int(stats.get("cost_evaluations", 0))
    grouping.stats.time_seconds = float(stats.get("time_seconds", 0.0))
    grouping.stats.group_limit = stats.get("group_limit")
    return grouping


def save_grouping(grouping: Grouping, path: str) -> None:
    """Write ``grouping`` to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(grouping_to_dict(grouping), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_grouping(pipeline: Pipeline, path: str) -> Grouping:
    """Load a grouping from ``path`` and validate it against ``pipeline``."""
    with open(path) as fh:
        data = json.load(fh)
    return grouping_from_dict(pipeline, data)
