"""Schedule serialization: save and reload groupings as JSON.

The DP search on a large pipeline takes seconds; production use wants to
schedule once and reuse.  A serialized grouping records the stage
partition, per-group tile sizes, the objective value and the search
statistics, plus a *pipeline structure digest* (stage names in topological
order, stage count, group count, format version).  Loading validates the
digest against the pipeline being scheduled: a schedule saved for an older
build of the program — renamed stages, added stages, different structure —
is rejected with the stable error code ``SCHEDULE_STALE`` instead of being
silently partially applied.

Format history:

* v1 — no digest; validated by pipeline name + stage count only.  Still
  loadable (with those weaker checks).
* v2 — adds ``digest``; mismatch is ``SCHEDULE_STALE``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Union

from ..dsl.pipeline import Pipeline
from ..errors import ScheduleFormatError, ScheduleStaleError
from .grouping import Grouping, GroupingStats, manual_grouping

__all__ = ["grouping_to_dict", "grouping_from_dict", "save_grouping",
           "load_grouping", "pipeline_digest"]

_FORMAT_VERSION = 2
#: versions this loader still accepts
_SUPPORTED_FORMATS = (1, 2)


def pipeline_digest(pipeline: Pipeline, num_groups: int) -> str:
    """A short stable digest of the pipeline structure a schedule was
    built for: stage names in topological order, stage count, the
    schedule's group count, and the format version."""
    h = hashlib.sha256()
    h.update(f"format:{_FORMAT_VERSION}\0".encode())
    h.update(f"pipeline:{pipeline.name}\0".encode())
    h.update(f"stages:{pipeline.num_stages}\0".encode())
    h.update(f"groups:{num_groups}\0".encode())
    for stage in pipeline.stages:
        h.update(stage.name.encode())
        h.update(b"\0")
    return h.hexdigest()[:16]


def grouping_to_dict(grouping: Grouping, timing: Optional[Dict] = None) -> Dict:
    """A JSON-serializable description of ``grouping``.

    ``timing`` optionally embeds a per-phase profile (the
    ``--profile-schedule`` snapshot) under a ``timing`` key; loaders
    ignore it."""
    data = {
        "format": _FORMAT_VERSION,
        "pipeline": grouping.pipeline.name,
        "num_stages": grouping.pipeline.num_stages,
        "digest": pipeline_digest(grouping.pipeline, grouping.num_groups),
        "groups": grouping.group_names(),
        "tile_sizes": [list(t) for t in grouping.tile_sizes],
        "cost": grouping.cost,
        "stats": {
            "strategy": grouping.stats.strategy,
            "enumerated": grouping.stats.enumerated,
            "cost_evaluations": grouping.stats.cost_evaluations,
            "time_seconds": grouping.stats.time_seconds,
            "group_limit": grouping.stats.group_limit,
            "extra": dict(grouping.stats.extra),
        },
    }
    if timing is not None:
        data["timing"] = timing
    return data


def grouping_from_dict(pipeline: Pipeline, data: Dict) -> Grouping:
    """Rebuild a grouping against ``pipeline``; validates stage coverage
    and (format v2) the pipeline structure digest."""
    fmt = data.get("format")
    if fmt not in _SUPPORTED_FORMATS:
        raise ScheduleFormatError(
            f"unsupported schedule format {fmt!r}; "
            f"supported: {list(_SUPPORTED_FORMATS)}",
            format=fmt,
            supported=list(_SUPPORTED_FORMATS),
        )
    if data.get("pipeline") != pipeline.name:
        raise ScheduleStaleError(
            f"schedule was made for pipeline {data.get('pipeline')!r}, "
            f"not {pipeline.name!r}",
            schedule_pipeline=data.get("pipeline"),
            pipeline=pipeline.name,
        )
    if data.get("num_stages") != pipeline.num_stages:
        raise ScheduleStaleError(
            f"schedule expects {data.get('num_stages')} stages, pipeline "
            f"has {pipeline.num_stages} (different build parameters?)",
            schedule_stages=data.get("num_stages"),
            pipeline_stages=pipeline.num_stages,
        )
    if fmt >= 2:
        expected = pipeline_digest(pipeline, len(data.get("groups", [])))
        if data.get("digest") != expected:
            raise ScheduleStaleError(
                "schedule digest does not match the pipeline structure "
                "(stage names or grouping changed since it was saved); "
                "re-run scheduling",
                schedule_digest=data.get("digest"),
                pipeline_digest=expected,
            )
    grouping = manual_grouping(
        pipeline,
        data["groups"],
        data["tile_sizes"],
        cost=float(data.get("cost", 0.0)),
        strategy=data.get("stats", {}).get("strategy", "loaded"),
    )
    stats = data.get("stats", {})
    grouping.stats.enumerated = int(stats.get("enumerated", 0))
    grouping.stats.cost_evaluations = int(stats.get("cost_evaluations", 0))
    grouping.stats.time_seconds = float(stats.get("time_seconds", 0.0))
    grouping.stats.group_limit = stats.get("group_limit")
    grouping.stats.extra = dict(stats.get("extra", {}))
    return grouping


def save_grouping(
    grouping: Grouping, path: str, timing: Optional[Dict] = None
) -> None:
    """Write ``grouping`` to ``path`` as JSON (with an optional embedded
    ``timing`` profile, see :func:`grouping_to_dict`)."""
    with open(path, "w") as fh:
        json.dump(grouping_to_dict(grouping, timing=timing), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")


def load_grouping(pipeline: Pipeline, path: str) -> Grouping:
    """Load a grouping from ``path`` and validate it against ``pipeline``."""
    with open(path) as fh:
        data = json.load(fh)
    return grouping_from_dict(pipeline, data)
