"""Hardened execution: validate, retry, degrade — never die mid-pipeline.

:func:`execute_guarded` wraps the overlapped-tiling interpreter
(:func:`repro.runtime.execute_grouping`) with the protections a serving
system needs:

* **Upfront input validation** — names, shapes, and dtypes are checked
  against the pipeline's image declarations before any work starts
  (``INPUT_MISSING`` / ``INPUT_SHAPE`` / ``INPUT_DTYPE``).
* **Per-tile capture with bounded retry** — a tile that raises inside the
  thread pool is retried ``tile_retries`` times; persistent failure
  surfaces as ``TILE_FAIL`` with group/tile coordinates and the original
  cause.
* **Per-group fallback to reference execution** — in degrade mode a group
  whose tiled execution failed (for any reason) is re-run stage-by-stage
  untiled, which is exactly the reference interpreter's semantics; the
  rest of the pipeline continues on the fallback's outputs.  A failed
  tiled group publishes nothing, so the fallback starts from clean state.
* **Optional non-finite scanning** — each group's freshly computed buffers
  can be scanned for NaN/Inf; findings trigger the same per-group fallback
  (or ``NUMERIC_NAN`` in strict mode).  If the reference rerun *also*
  produces non-finite values the pipeline genuinely computes them, and the
  outcome records that instead of failing.
* **Scratch memory cap** — estimated per-tile scratch footprint is checked
  *before* allocation; oversized tiles are halved along their largest
  dimension until they fit (``MEMORY_BUDGET`` if even 1-point tiles
  cannot).

The returned :class:`ExecutionReport` carries the outputs plus a
per-group audit trail of what actually ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dsl.pipeline import Pipeline
from ..obs import METRICS, TRACE
from ..errors import (
    InputDtypeError,
    InputMissingError,
    InputShapeError,
    MemoryBudgetError,
    NumericError,
    ReproError,
    TileExecutionError,
    error_code,
)
from ..fusion.grouping import Grouping
from ..poly.alignscale import GroupGeometry, compute_group_geometry
from ..runtime.executor import (
    _compute_stage_full,
    _execute_one_group,
    _input_buffers,
    _stage_region,
)
from ..runtime.kernelcache import stage_kernels
from . import faults

__all__ = [
    "GuardPolicy",
    "GroupOutcome",
    "ExecutionReport",
    "validate_inputs",
    "execute_guarded",
    "estimate_tile_scratch_bytes",
    "fit_tiles_to_memory_cap",
]


@dataclass(frozen=True)
class GuardPolicy:
    """Knobs of :func:`execute_guarded`."""

    #: validate input names/shapes/dtypes before executing
    validate: bool = True
    #: per-tile bounded retries before a tile counts as failed
    tile_retries: int = 1
    #: fall back to reference execution for a failed group instead of
    #: raising (maps to the CLI's ``--degrade`` / ``--strict``)
    degrade: bool = True
    #: scan each group's outputs for NaN/Inf
    scan_nonfinite: bool = False
    #: cap on estimated per-tile scratch bytes (all threads combined);
    #: tiles shrink to fit before allocation
    memory_cap_bytes: Optional[int] = None
    #: use compiled stage kernels (``None``: on unless the
    #: ``REPRO_NO_COMPILE`` env knob disables them; ``False``: pure
    #: interpreter, the CLI's ``--no-compile``)
    compile_kernels: Optional[bool] = None
    #: use fused per-group kernels on top of stage kernels (``None``: on
    #: unless the ``REPRO_NO_FUSE`` env knob disables them; ``False``:
    #: per-stage kernels only, the CLI's ``--no-fuse``)
    fuse_kernels: Optional[bool] = None
    #: carry computed stage windows between adjacent tiles of a chunk
    #: (``None``: on unless the ``REPRO_NO_REUSE`` env knob disables it;
    #: ``False``: full per-tile recompute, the CLI's ``--no-reuse``)
    halo_reuse: Optional[bool] = None


@dataclass
class GroupOutcome:
    """Audit record for one group's execution."""

    group_index: int
    stages: List[str]
    #: "tiled" | "untiled" | "reference-fallback"
    mode: str
    tile_sizes: Tuple[int, ...] = ()
    #: stable code of the error that forced a fallback, if any
    error_code: Optional[str] = None
    note: str = ""


@dataclass
class ExecutionReport:
    """Outputs plus the per-group audit trail."""

    outputs: Dict[str, np.ndarray]
    outcomes: List[GroupOutcome] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return any(o.mode == "reference-fallback" for o in self.outcomes)

    def describe(self) -> str:
        lines = ["Guarded execution:"]
        for o in self.outcomes:
            line = f"  group {o.group_index} {{{', '.join(o.stages)}}}: {o.mode}"
            if o.error_code:
                line += f" [{o.error_code}]"
            if o.note:
                line += f" ({o.note})"
            lines.append(line)
        return "\n".join(lines)


def validate_inputs(
    pipeline: Pipeline, inputs: Mapping[str, np.ndarray]
) -> None:
    """Check input names, shapes, and dtypes without copying any data.

    Raises the structured ``INPUT_*`` errors of :mod:`repro.errors`.
    Unknown extra keys are tolerated (callers may batch inputs for several
    pipelines into one mapping).
    """
    expected = sorted(img.name for img in pipeline.images)
    for img in pipeline.images:
        if img.name not in inputs:
            raise InputMissingError(
                f"missing input image {img.name!r}; expected inputs "
                f"{expected}, got {sorted(inputs)}",
                missing=img.name,
                expected=expected,
                provided=sorted(inputs),
            )
        arr = np.asarray(inputs[img.name])
        shape = pipeline.image_shape(img)
        if arr.shape != shape:
            raise InputShapeError(
                f"input {img.name!r} has shape {arr.shape}, expected {shape}",
                image=img.name,
                actual=arr.shape,
                expected=shape,
            )
        if arr.dtype.kind not in "buifc":
            raise InputDtypeError(
                f"input {img.name!r} has non-numeric dtype {arr.dtype}, "
                f"expected something convertible to "
                f"{img.scalar_type.np_dtype}",
                image=img.name,
                actual=str(arr.dtype),
                expected=str(img.scalar_type.np_dtype),
            )


def estimate_tile_scratch_bytes(
    pipeline: Pipeline,
    geom: GroupGeometry,
    tile_sizes: Sequence[int],
) -> int:
    """Estimated bytes of per-tile scratch for one tile of the group: the
    expanded (overlapped) region of every member stage at its dtype."""
    radii = geom.expansion_radii()
    first = tuple(lo for lo, _ in geom.grid_bounds)
    total = 0
    for stage in geom.stages:
        bounds = _stage_region(
            geom, stage, pipeline, first, tile_sizes, radii, True
        )
        if bounds is None:
            continue
        volume = 1
        for lo, hi in bounds:
            volume *= hi - lo + 1
        total += volume * stage.scalar_type.np_dtype.itemsize
    return total


def fit_tiles_to_memory_cap(
    pipeline: Pipeline,
    geom: GroupGeometry,
    tile_sizes: Sequence[int],
    cap_bytes: int,
    nthreads: int = 1,
) -> Tuple[int, ...]:
    """Shrink ``tile_sizes`` (halving the largest dimension first) until
    ``nthreads`` concurrent tiles of scratch fit under ``cap_bytes``.

    Raises :class:`MemoryBudgetError` if even 1-point tiles exceed the
    cap — the group cannot be tiled within budget at all.
    """
    tiles = list(tile_sizes)
    while True:
        est = estimate_tile_scratch_bytes(pipeline, geom, tiles) * nthreads
        if est <= cap_bytes:
            return tuple(tiles)
        candidates = [g for g, t in enumerate(tiles) if t > 1]
        if not candidates:
            raise MemoryBudgetError(
                f"group scratch needs ~{est} bytes even at 1-point tiles, "
                f"over the {cap_bytes}-byte cap",
                estimated_bytes=est,
                cap_bytes=cap_bytes,
                stages=[s.name for s in geom.stages],
            )
        g = max(candidates, key=lambda i: tiles[i])
        tiles[g] = max(1, tiles[g] // 2)


def _nonfinite_stages(
    members, buffers, pipeline: Pipeline
) -> List[str]:
    """Member stages whose (float) buffers contain NaN/Inf."""
    bad = []
    for stage in pipeline.stages:
        if stage not in members:
            continue
        buf = buffers.get(stage.name)
        if buf is None or buf.data.dtype.kind != "f":
            continue
        if not np.isfinite(buf.data).all():
            bad.append(stage.name)
    return bad


def _run_reference_group(
    pipeline: Pipeline, members, buffers
) -> None:
    """Re-run one group's stages untiled over full domains — the reference
    interpreter's semantics — with fault injection suspended so the
    degraded path cannot itself be sabotaged."""
    with faults.suspended():
        for stage in pipeline.stages:
            if stage in members:
                buffers[stage.name] = _compute_stage_full(
                    pipeline, stage, buffers
                )


def execute_guarded(
    pipeline: Pipeline,
    grouping: Grouping,
    inputs: Mapping[str, np.ndarray],
    nthreads: int = 1,
    policy: Optional[GuardPolicy] = None,
    executor=None,
    pools=None,
) -> ExecutionReport:
    """Execute ``grouping`` with validation, bounded retries, and
    per-group degradation to reference execution.

    In degrade mode (the default) this function only raises for invalid
    inputs or a caller contract violation — *execution* failures of any
    group, injected or genuine, are absorbed by re-running that group
    untiled.  In strict mode (``policy.degrade=False``) the structured
    error of the first failing group propagates (``TILE_FAIL``,
    ``NUMERIC_NAN``, ``MEMORY_BUDGET``, …).

    ``executor`` (a persistent ``ThreadPoolExecutor``) and ``pools`` (a
    :class:`repro.runtime.buffers.PoolGroup` of warm worker-local scratch
    pools) are passed straight through to the tiled executor — the serve
    layer owns both so steady-state requests pay no pool setup; omitted,
    the executor falls back to its process-global shared pool.
    """
    policy = policy or GuardPolicy()
    if grouping.pipeline is not pipeline:
        raise ValueError("grouping was built for a different pipeline")
    if nthreads < 1:
        raise ValueError("nthreads must be positive")
    with TRACE.span("prepare", pipeline=pipeline.name):
        if policy.validate:
            validate_inputs(pipeline, inputs)
        buffers = _input_buffers(pipeline, inputs)
        kernels = stage_kernels(pipeline, enabled=policy.compile_kernels)

    observing = METRICS.enabled
    t_exec = time.perf_counter() if observing else 0.0
    outcomes: List[GroupOutcome] = []
    with TRACE.span(
        "execute_guarded", pipeline=pipeline.name, nthreads=nthreads,
        groups=grouping.num_groups,
    ):
        for gi, (members, tiles) in enumerate(
            zip(grouping.groups, grouping.tile_sizes)
        ):
            names = sorted(s.name for s in members)
            outcome = GroupOutcome(
                group_index=gi, stages=names, mode="tiled",
                tile_sizes=tuple(tiles),
            )
            t_group = time.perf_counter() if observing else 0.0
            with TRACE.span(
                "group", index=gi, stages=names, tiles=list(tiles),
            ) as gspan:
                try:
                    run_tiles: Sequence[int] = tiles
                    if policy.memory_cap_bytes is not None:
                        geom = compute_group_geometry(pipeline, members)
                        if geom is not None and len(tiles) == geom.ndim:
                            run_tiles = fit_tiles_to_memory_cap(
                                pipeline, geom, tiles,
                                policy.memory_cap_bytes, nthreads,
                            )
                            if tuple(run_tiles) != tuple(tiles):
                                outcome.note = (
                                    f"tiles shrunk {list(tiles)} -> "
                                    f"{list(run_tiles)} for memory cap"
                                )
                                outcome.tile_sizes = tuple(run_tiles)
                    outcome.mode = _execute_one_group(
                        pipeline, members, run_tiles, buffers, nthreads,
                        group_index=gi, tile_retries=policy.tile_retries,
                        kernels=kernels, executor=executor, pools=pools,
                        fuse_kernels=policy.fuse_kernels,
                        halo_reuse=policy.halo_reuse,
                    )
                except Exception as exc:  # noqa: BLE001 - rewrapped below
                    if not policy.degrade:
                        if isinstance(exc, ReproError):
                            raise
                        raise TileExecutionError(
                            f"group {gi} failed: {exc}",
                            group_index=gi,
                            tile_index=-1,
                            cause=exc,
                        ) from exc
                    code = error_code(exc)
                    if observing:
                        METRICS.inc(
                            "repro_degraded_groups_total", code=code
                        )
                    with TRACE.span(
                        "reference-fallback", index=gi, code=code,
                    ):
                        _run_reference_group(pipeline, members, buffers)
                    outcome.mode = "reference-fallback"
                    outcome.error_code = code
                    if not outcome.note:
                        outcome.note = str(exc)[:200]

                if policy.scan_nonfinite:
                    bad = _nonfinite_stages(members, buffers, pipeline)
                    if bad and outcome.mode != "reference-fallback":
                        if not policy.degrade:
                            raise NumericError(
                                f"non-finite values in stages {bad} of "
                                f"group {gi}",
                                group_index=gi,
                                stages=bad,
                            )
                        if observing:
                            METRICS.inc(
                                "repro_degraded_groups_total",
                                code=NumericError.code,
                            )
                        with TRACE.span(
                            "reference-fallback", index=gi,
                            code=NumericError.code,
                        ):
                            _run_reference_group(
                                pipeline, members, buffers
                            )
                        outcome.mode = "reference-fallback"
                        outcome.error_code = NumericError.code
                        bad = _nonfinite_stages(members, buffers, pipeline)
                    if bad:
                        outcome.note = (
                            f"non-finite values in {bad} (also in "
                            f"reference — genuine pipeline output)"
                            if outcome.mode == "reference-fallback"
                            else outcome.note
                        )
                gspan.set(mode=outcome.mode)
                if outcome.error_code:
                    gspan.set(error_code=outcome.error_code)
            if observing:
                METRICS.observe(
                    "repro_group_seconds",
                    time.perf_counter() - t_group,
                    pipeline=pipeline.name,
                )
            outcomes.append(outcome)
    if observing:
        METRICS.observe(
            "repro_execute_seconds", time.perf_counter() - t_exec,
            pipeline=pipeline.name, mode="guarded",
        )

    outputs = {o.name: buffers[o.name].data for o in pipeline.outputs}
    return ExecutionReport(outputs=outputs, outcomes=outcomes)
