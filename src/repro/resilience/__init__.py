"""Resilient scheduling and execution.

Production traffic must never hard-fail when a cheaper answer exists: the
scheduler degrades ``dp → dp-incremental → greedy → no-fusion``
(:func:`resilient_schedule`) and the executor validates inputs, retries
and captures per-tile failures, and falls back to reference execution per
group (:func:`execute_guarded`).  :mod:`repro.resilience.faults` injects
deterministic failures at the instrumented sites so every one of those
edges is provable in tests.

Attribute access is lazy: the runtime's instrumented sites import
:mod:`repro.resilience.faults` while :mod:`repro.resilience.guard` imports
the runtime, so eagerly importing the submodules here would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    # fallback
    "ScheduleBudget",
    "ScheduleReport",
    "TierAttempt",
    "resilient_schedule",
    # guard
    "ExecutionReport",
    "GroupOutcome",
    "GuardPolicy",
    "execute_guarded",
    "validate_inputs",
    # faults
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "inject_faults",
    "maybe_fail",
    "suspended",
]

_LOCATIONS = {
    "ScheduleBudget": "fallback",
    "ScheduleReport": "fallback",
    "TierAttempt": "fallback",
    "resilient_schedule": "fallback",
    "ExecutionReport": "guard",
    "GroupOutcome": "guard",
    "GuardPolicy": "guard",
    "execute_guarded": "guard",
    "validate_inputs": "guard",
    "FaultInjector": "faults",
    "FaultSpec": "faults",
    "FaultStats": "faults",
    "inject_faults": "faults",
    "maybe_fail": "faults",
    "suspended": "faults",
}

if TYPE_CHECKING:  # pragma: no cover
    from .fallback import (  # noqa: F401
        ScheduleBudget,
        ScheduleReport,
        TierAttempt,
        resilient_schedule,
    )
    from .faults import (  # noqa: F401
        FaultInjector,
        FaultSpec,
        FaultStats,
        inject_faults,
        maybe_fail,
        suspended,
    )
    from .guard import (  # noqa: F401
        ExecutionReport,
        GroupOutcome,
        GuardPolicy,
        execute_guarded,
        validate_inputs,
    )


def __getattr__(name: str):
    module_name = _LOCATIONS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
