"""Deterministic, seedable fault injection.

The resilience layer claims that every degradation edge — DP budget blown,
cost evaluation erroring, a tile raising mid-pool, a scratch allocation
failing — is actually handled.  This module makes those claims testable:
instrumented sites in the scheduler and runtime call :func:`maybe_fail`,
which is free when no injector is active and raises
:class:`~repro.errors.InjectedFault` according to a seeded plan when one
is.

Instrumented sites
------------------
``"cost"``
    :meth:`repro.model.cost.CostModel.cost` — each *uncached* group
    evaluation (what the DP and incremental tiers run on).
``"tile"``
    each tile attempt of :func:`repro.runtime.executor.execute_grouping`'s
    fused-group loop (keyed by group, tile, and retry attempt, so bounded
    retries observe fresh draws).
``"alloc"``
    :meth:`repro.runtime.buffers.Buffer.for_region` — scratch and output
    buffer allocation.

Determinism: a check keyed ``(site, detail)`` fails iff
``hash(seed, site, detail) < rate`` — independent of thread scheduling, so
a tile that fails once fails on every rerun of the same attempt.  Checks
without a ``detail`` key fall back to a per-site counter (deterministic
for serial call sites).  ``max_failures`` bounds the total failures a site
injects, after which its checks pass — how tests exercise
retry-then-succeed paths.

Usage::

    with inject_faults(seed=7, tile=1.0) as injector:
        ...                      # every tile attempt raises InjectedFault
    injector.counts["tile"]      # FaultStats(checks=…, failures=…)

The guard's reference fallback runs under :func:`suspended` so a degraded
re-execution is never itself sabotaged — the harness proves fallbacks
*fire*; the fallback path runs clean.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Union

from ..errors import InjectedFault

__all__ = [
    "FaultSpec",
    "FaultStats",
    "FaultInjector",
    "inject_faults",
    "maybe_fail",
    "suspended",
    "active_injector",
]


@dataclass(frozen=True)
class FaultSpec:
    """Configuration of one injection site."""

    rate: float = 0.0
    max_failures: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


@dataclass
class FaultStats:
    """Per-site bookkeeping."""

    checks: int = 0
    failures: int = 0


def _unit_hash(seed: int, site: str, key: str) -> float:
    """A deterministic value in [0, 1) from (seed, site, key)."""
    data = f"{seed}:{site}:{key}".encode()
    return zlib.crc32(data) / 2**32


class FaultInjector:
    """A seeded plan of which instrumented sites fail, at which rates."""

    def __init__(
        self,
        seed: int = 0,
        sites: Optional[Mapping[str, Union[float, FaultSpec]]] = None,
    ):
        self.seed = seed
        self.sites: Dict[str, FaultSpec] = {}
        for name, spec in (sites or {}).items():
            if not isinstance(spec, FaultSpec):
                spec = FaultSpec(rate=float(spec))
            self.sites[name] = spec
        self.counts: Dict[str, FaultStats] = {
            name: FaultStats() for name in self.sites
        }
        self._lock = threading.Lock()

    def check(self, site: str, detail: str = "") -> None:
        """Raise :class:`InjectedFault` if the plan fails this check."""
        spec = self.sites.get(site)
        if spec is None or spec.rate == 0.0:
            return
        with self._lock:
            stats = self.counts[site]
            stats.checks += 1
            key = detail if detail else f"#{stats.checks}"
            exhausted = (
                spec.max_failures is not None
                and stats.failures >= spec.max_failures
            )
            fail = not exhausted and (
                spec.rate >= 1.0
                or _unit_hash(self.seed, site, key) < spec.rate
            )
            if fail:
                stats.failures += 1
        if fail:
            raise InjectedFault(
                f"injected fault at site {site!r}",
                site=site,
                detail=detail,
                seed=self.seed,
            )

    def total_failures(self) -> int:
        return sum(s.failures for s in self.counts.values())


_ACTIVE: Optional[FaultInjector] = None
_SUSPEND = threading.local()


def active_injector() -> Optional[FaultInjector]:
    """The injector currently in force, if any."""
    return _ACTIVE


def maybe_fail(site: str, detail: str = "") -> None:
    """Hook called from instrumented sites; a no-op unless an injector is
    active and not suspended on this thread."""
    injector = _ACTIVE
    if injector is None or getattr(_SUSPEND, "depth", 0) > 0:
        return
    injector.check(site, detail)


@contextmanager
def inject_faults(
    injector: Optional[FaultInjector] = None,
    *,
    seed: int = 0,
    **site_rates: Union[float, FaultSpec],
) -> Iterator[FaultInjector]:
    """Activate fault injection for the dynamic extent of the block.

    Either pass a prebuilt :class:`FaultInjector` or site rates as keyword
    arguments (``inject_faults(tile=1.0, seed=3)``).  Nesting replaces the
    outer injector for the inner block.
    """
    global _ACTIVE
    if injector is None:
        injector = FaultInjector(seed=seed, sites=site_rates)
    elif site_rates:
        raise ValueError("pass either an injector or site rates, not both")
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Disable injection on the current thread (used by the guard while it
    re-executes a failed group via the reference path)."""
    _SUSPEND.depth = getattr(_SUSPEND, "depth", 0) + 1
    try:
        yield
    finally:
        _SUSPEND.depth -= 1
