"""The scheduling degradation chain: ``dp → dp-incremental → greedy →
no-fusion``.

The paper's unbounded DP (Sec. 3) is optimal but can blow up on wide
DAGs; its own answer to that is the bounded incremental variant (Sec. 5).
:func:`resilient_schedule` institutionalises the idea: it walks a chain of
ever-cheaper tiers under hard wall-clock and DP-state budgets, and *always*
returns a valid grouping — in the worst case the no-fusion grouping, which
is structurally incapable of failing.  The returned
:class:`ScheduleReport` records which tier produced the schedule, why each
earlier tier was abandoned (stable error codes from :mod:`repro.errors`),
and how much budget each attempt consumed.

====================  ======================================================
tier                  what can disqualify it
====================  ======================================================
``dp``                state budget, wall-clock budget, cost-model failure,
                      no finite-cost grouping
``dp-incremental``    same (bounded passes with a growing limit ``l``)
``greedy``            geometry/overlap analysis failure
``no-fusion``         nothing — it never runs the cost model or the DP
====================  ======================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..dsl.pipeline import Pipeline
from ..errors import GroupingBudgetExceeded, error_code
from ..obs import METRICS, TRACE
from ..fusion.bounded import inc_grouping
from ..fusion.dp import dp_group
from ..fusion.greedy import polymage_greedy
from ..fusion.grouping import Grouping, singleton_grouping
from ..model.cost import CostModel
from ..model.machine import Machine

__all__ = [
    "ScheduleBudget",
    "TierAttempt",
    "ScheduleReport",
    "resilient_schedule",
    "TIERS",
]

#: the degradation chain, cheapest-last
TIERS = ("dp", "dp-incremental", "greedy", "no-fusion")


@dataclass(frozen=True)
class ScheduleBudget:
    """Hard budgets for the optimizing tiers.

    ``wall_clock_s`` bounds the *total* time the DP tiers may spend
    (enforced cooperatively per DP state); ``dp_max_states`` bounds the
    states of the unbounded DP tier, ``inc_max_states`` those of each
    bounded incremental pass (defaults to ``dp_max_states``).  The greedy
    and no-fusion tiers always run to completion — they are the floor the
    budgets degrade onto, and both are orders of magnitude cheaper than
    any DP pass.
    """

    wall_clock_s: Optional[float] = None
    dp_max_states: Optional[int] = 1_200_000
    inc_max_states: Optional[int] = None
    #: initial group limit ``l`` and multiplicative step of the
    #: incremental tier (paper Sec. 5; l grows by ``step`` per pass)
    initial_limit: int = 2
    step: int = 2
    #: lossless branch-and-bound / dominance pruning for the DP tiers
    #: (identical groupings, fewer explored states)
    prune: bool = False

    @property
    def effective_inc_states(self) -> Optional[int]:
        return (
            self.inc_max_states
            if self.inc_max_states is not None
            else self.dp_max_states
        )


@dataclass
class TierAttempt:
    """One tier's outcome within a :func:`resilient_schedule` run."""

    tier: str
    status: str  # "ok" | "failed" | "skipped"
    reason: str = ""
    error_code: Optional[str] = None
    elapsed_s: float = 0.0
    states: int = 0


@dataclass
class ScheduleReport:
    """What :func:`resilient_schedule` did and why.

    ``grouping`` is always a valid grouping of the pipeline; ``tier`` names
    the chain link that produced it; ``attempts`` records every tier
    tried or skipped, in order, with the stable error code that
    disqualified it.
    """

    grouping: Grouping
    tier: str
    attempts: List[TierAttempt] = field(default_factory=list)
    elapsed_s: float = 0.0
    states_explored: int = 0

    @property
    def degraded(self) -> bool:
        """True when a tier below the unbounded DP produced the result."""
        return self.tier != TIERS[0]

    def describe(self) -> str:
        lines = [
            f"Resilient schedule of {self.grouping.pipeline.name!r}: "
            f"tier={self.tier}"
            f"{' (degraded)' if self.degraded else ''}, "
            f"{self.elapsed_s:.3f}s, {self.states_explored} DP states"
        ]
        for a in self.attempts:
            line = f"  {a.tier}: {a.status}"
            if a.status == "ok":
                line += f" ({a.elapsed_s:.3f}s, {a.states} states)"
            else:
                line += f" — {a.reason}"
                if a.error_code:
                    line += f" [{a.error_code}]"
            lines.append(line)
        return "\n".join(lines)


def _reason(exc: BaseException) -> str:
    text = str(exc)
    return text if len(text) <= 200 else text[:197] + "..."


def resilient_schedule(
    pipeline: Pipeline,
    machine: Machine,
    budget: Optional[ScheduleBudget] = None,
    *,
    cost_model: Optional[CostModel] = None,
) -> ScheduleReport:
    """Schedule ``pipeline`` with graceful degradation.

    Never raises for data-dependent reasons: every tier failure —
    budget exhaustion (``SCHED_BUDGET``), cost-model errors, geometry
    failures, anything — is recorded in the report and the next tier
    tried.  The no-fusion tier is infallible, so a grouping always comes
    back.
    """
    budget = budget or ScheduleBudget()
    start = time.perf_counter()
    attempts: List[TierAttempt] = []
    cm = cost_model or CostModel(pipeline, machine)

    def remaining() -> Optional[float]:
        if budget.wall_clock_s is None:
            return None
        return budget.wall_clock_s - (time.perf_counter() - start)

    def out_of_time() -> bool:
        left = remaining()
        return left is not None and left <= 0

    def record(attempt_rec: TierAttempt) -> None:
        attempts.append(attempt_rec)
        if METRICS.enabled:
            METRICS.inc(
                "repro_schedule_tier_attempts_total",
                tier=attempt_rec.tier, status=attempt_rec.status,
            )

    def finish(tier: str, grouping: Grouping) -> ScheduleReport:
        return ScheduleReport(
            grouping=grouping,
            tier=tier,
            attempts=attempts,
            elapsed_s=time.perf_counter() - start,
            states_explored=sum(a.states for a in attempts),
        )

    def attempt(tier: str, runner) -> Optional[Grouping]:
        t0 = time.perf_counter()
        with TRACE.span("tier", tier=tier) as tspan:
            try:
                grouping = runner()
            except GroupingBudgetExceeded as exc:
                tspan.set(status="failed", error_code=exc.code)
                record(TierAttempt(
                    tier=tier, status="failed", reason=_reason(exc),
                    error_code=exc.code,
                    elapsed_s=time.perf_counter() - t0,
                    states=int(exc.context.get("states_evaluated", 0)),
                ))
                return None
            except Exception as exc:  # noqa: BLE001 - any failure degrades
                tspan.set(status="failed", error_code=error_code(exc))
                record(TierAttempt(
                    tier=tier, status="failed", reason=_reason(exc),
                    error_code=error_code(exc),
                    elapsed_s=time.perf_counter() - t0,
                ))
                return None
            tspan.set(status="ok", states=grouping.stats.enumerated)
        record(TierAttempt(
            tier=tier, status="ok",
            elapsed_s=time.perf_counter() - t0,
            states=grouping.stats.enumerated,
        ))
        return grouping

    with TRACE.span(
        "resilient_schedule", pipeline=pipeline.name,
    ) as sched_span:
        # Tier 1: the unbounded DP (paper Sec. 3).
        if out_of_time():
            record(TierAttempt(
                tier="dp", status="skipped",
                reason="wall-clock budget exhausted",
                error_code="SCHED_BUDGET",
            ))
        else:
            grouping = attempt("dp", lambda: dp_group(
                pipeline, machine, cost_model=cm,
                max_states=budget.dp_max_states,
                time_budget_s=remaining(),
                prune=budget.prune,
            ))
            if grouping is not None:
                sched_span.set(tier="dp")
                return finish("dp", grouping)

        # Tier 2: bounded incremental DP with growing limit l (Sec. 5).
        if out_of_time():
            record(TierAttempt(
                tier="dp-incremental", status="skipped",
                reason="wall-clock budget exhausted",
                error_code="SCHED_BUDGET",
            ))
        else:
            grouping = attempt("dp-incremental", lambda: inc_grouping(
                pipeline, machine,
                initial_limit=budget.initial_limit, step=budget.step,
                cost_model=cm,
                max_states=budget.effective_inc_states,
                time_budget_s=remaining(),
                prune=budget.prune,
            ))
            if grouping is not None:
                sched_span.set(tier="dp-incremental")
                return finish("dp-incremental", grouping)

        # Tier 3: PolyMage's greedy heuristic — no DP, no cost model.
        grouping = attempt(
            "greedy", lambda: polymage_greedy(pipeline, machine)
        )
        if grouping is not None:
            sched_span.set(tier="greedy")
            return finish("greedy", grouping)

        # Tier 4: no fusion at all.  Cannot fail.
        grouping = singleton_grouping(pipeline)
        record(TierAttempt(tier="no-fusion", status="ok"))
        sched_span.set(tier="no-fusion")
        return finish("no-fusion", grouping)
