"""Ablation — non-power-of-two tile sizes.

One of the paper's stated advantages over both PolyMage's and Halide's
tuners is that tile sizes are *not* restricted to powers of two (Sec. 2.4).
This ablation takes every PolyMageDP schedule and rounds its tile sizes
down to powers of two (what a pow2-restricted search could at best pick
near the same operating point), then compares estimated run times.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import MAX_STATES, write_result
from repro.fusion import Grouping, dp_group, inc_grouping
from repro.fusion.grouping import GroupingStats
from repro.model import XEON_HASWELL
from repro.perfmodel import estimate_runtime
from repro.pipelines import BENCHMARKS
from repro.reporting import format_table

ORDER = ["UM", "HC", "BG", "MI", "CP", "PB"]


def _pow2_floor(v: int) -> int:
    p = 1
    while p * 2 <= v:
        p *= 2
    return p


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for ab in ORDER:
        pipe = BENCHMARKS[ab].build()
        if ab == "PB":
            dp = inc_grouping(pipe, XEON_HASWELL, initial_limit=2, step=2,
                              max_states=MAX_STATES)
        else:
            dp = dp_group(pipe, XEON_HASWELL, max_states=MAX_STATES)
        rounded = Grouping(
            pipeline=pipe,
            groups=dp.groups,
            tile_sizes=tuple(
                tuple(t if t <= 4 else _pow2_floor(t) for t in tiles)
                for tiles in dp.tile_sizes
            ),
            cost=0.0,
            stats=GroupingStats(strategy="dp+pow2-tiles"),
        )
        t_model = estimate_runtime(pipe, dp, XEON_HASWELL, 16) * 1e3
        t_pow2 = estimate_runtime(pipe, rounded, XEON_HASWELL, 16) * 1e3
        nonpow2 = sum(
            1 for tiles in dp.tile_sizes for t in tiles
            if t > 4 and t & (t - 1)
        )
        out[ab] = (t_model, t_pow2, nonpow2)
    return out


def test_pow2_ablation_report(comparison):
    rows = []
    for ab in ORDER:
        t_model, t_pow2, nonpow2 = comparison[ab]
        rows.append([
            BENCHMARKS[ab].name,
            round(t_model, 2),
            round(t_pow2, 2),
            f"{t_pow2 / t_model:.3f}",
            nonpow2,
        ])
    text = format_table(
        "Ablation: model tile sizes vs power-of-two rounding (Xeon, 16 cores)",
        ["benchmark", "model ms", "pow2 ms", "ratio", "#non-pow2 tiles"],
        rows,
        note="ratio > 1 means the pow2 restriction costs performance.",
    )
    print("\n" + text)
    write_result("ablation_pow2.txt", text)


def test_model_uses_non_pow2_tiles_somewhere(comparison):
    assert any(nonpow2 > 0 for _, _, nonpow2 in comparison.values())


def test_pow2_restriction_never_helps_much(comparison):
    # Rounding can only shrink tiles; it should never be much faster.
    for ab, (t_model, t_pow2, _) in comparison.items():
        assert t_pow2 >= t_model * 0.9, ab


def test_rounding_speed(benchmark, comparison):
    pipe = BENCHMARKS["UM"].build()
    dp = dp_group(pipe, XEON_HASWELL)
    benchmark(lambda: estimate_runtime(pipe, dp, XEON_HASWELL, 16))
