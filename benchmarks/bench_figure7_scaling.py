"""Figure 7 — performance and scaling on the Intel Xeon.

The paper's Figure 7 charts, per benchmark, the speedup of every
configuration at 1 and 16 cores over the *sequential PolyMageDP* run.
This bench reproduces the same series as text (one row per configuration
x thread count) and checks the scaling claims: fused PolyMageDP schedules
scale strongly (paper: 7.6x-12.3x from 1 to 16 cores), and at 16 cores
PolyMageDP leads or matches on most benchmarks.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import CONFIGS, run_benchmark, write_result
from repro.model import XEON_HASWELL
from repro.pipelines import BENCHMARKS
from repro.reporting import format_table

ORDER = ["UM", "HC", "BG", "MI", "CP", "PB"]

#: Paper Figure 7 reference: PolyMageDP speedup at 16 cores over its own
#: sequential run.
PAPER_DP_SCALING = {
    "UM": 10.11, "HC": 12.31, "BG": 11.35, "MI": 7.65, "CP": 12.1, "PB": 10.6,
}


@pytest.fixture(scope="module")
def results():
    return {ab: run_benchmark(ab, XEON_HASWELL) for ab in ORDER}


def _speedups(results):
    """speedup[(ab, cfg, nthreads)] over sequential PolyMageDP."""
    out = {}
    for ab in ORDER:
        r = results[ab].times_ms
        base = r[("PolyMageDP", 1)]
        for cfg, _ in CONFIGS:
            for nt in (1, 16):
                out[(ab, cfg, nt)] = base / r[(cfg, nt)]
    return out


def test_figure7_report(results):
    sp = _speedups(results)
    rows = []
    for ab in ORDER:
        for cfg, _ in CONFIGS:
            rows.append([
                BENCHMARKS[ab].name if cfg == "H-manual" else "",
                cfg,
                round(sp[(ab, cfg, 1)], 2),
                round(sp[(ab, cfg, 16)], 2),
            ])
        rows.append([
            "", "paper PolyMageDP@16", "1.00", PAPER_DP_SCALING[ab],
        ])
    text = format_table(
        "Figure 7: speedup over sequential PolyMageDP (Intel Xeon)",
        ["benchmark", "configuration", "1 core", "16 cores"],
        rows,
    )
    print("\n" + text)
    write_result("figure7_scaling.txt", text)


class TestScalingShape:
    def test_dp_sequential_is_the_baseline(self, results):
        sp = _speedups(results)
        for ab in ORDER:
            assert sp[(ab, "PolyMageDP", 1)] == pytest.approx(1.0)

    def test_dp_scales_well(self, results):
        # Paper: 7.6x-12.3x at 16 cores, with Multiscale Interpolation the
        # weakest scaler.  Require solid scaling everywhere and strong
        # scaling on the stencil-dominated benchmarks.
        sp = _speedups(results)
        scalings = {ab: sp[(ab, "PolyMageDP", 16)] for ab in ORDER}
        for ab, s in scalings.items():
            assert s > 3.0, (ab, s)
        assert sorted(scalings.values())[len(ORDER) // 2] > 8.0

    def test_mi_is_the_weakest_scaler(self, results):
        # The paper's Figure 7 shows MI scaling worst (7.65x); ours agrees
        # qualitatively.
        sp = _speedups(results)
        scalings = {ab: sp[(ab, "PolyMageDP", 16)] for ab in ORDER}
        assert min(scalings, key=scalings.get) == "MI"

    def test_every_config_benefits_from_threads(self, results):
        sp = _speedups(results)
        for ab in ORDER:
            for cfg, _ in CONFIGS:
                assert sp[(ab, cfg, 16)] > sp[(ab, cfg, 1)], (ab, cfg)

    def test_dp_wins_somewhere_and_never_trails_polymage_a(self, results):
        # Paper: DP leads on 4 of 6 Xeon benchmarks at 16 cores.  Our
        # H-auto reimplementation is stronger than the 2016 original (it
        # prices merges with overlap-exact metrics), so we require the
        # within-PolyMage claim strictly — DP leads outright somewhere and
        # never trails the auto-tuned PolyMage-A meaningfully.
        sp = _speedups(results)
        wins = 0
        for ab in ORDER:
            dp = sp[(ab, "PolyMageDP", 16)]
            if all(dp >= sp[(ab, cfg, 16)] * 0.999 for cfg, _ in CONFIGS
                   if cfg != "PolyMageDP"):
                wins += 1
        assert wins >= 1
        for ab in ORDER:
            assert (
                sp[(ab, "PolyMageDP", 16)]
                >= sp[(ab, "PolyMage-A", 16)] * 0.90
            ), ab


def test_scaling_sweep_speed(benchmark, results):
    """Pricing one schedule across a 1..16 thread sweep."""
    from repro.perfmodel import estimate_runtime

    r = results["UM"]
    g = r.groupings["PolyMageDP"]
    pipe = g.pipeline

    def sweep():
        return [
            estimate_runtime(pipe, g, XEON_HASWELL, nt)
            for nt in (1, 2, 4, 8, 16)
        ]

    times = benchmark(sweep)
    assert times == sorted(times, reverse=True)
