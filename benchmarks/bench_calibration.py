"""Extension experiment — reproducing the paper's "empirical trial".

Sec. 6.1: the weights "were set to fixed values for the entire evaluation
after an empirical trial".  This bench runs that trial with
:func:`repro.model.calibrate_weights` over reduced-size builds of three
benchmarks, scoring candidates with the timing model, and checks that

* the shipped preset weights score within a few percent of the best
  candidate found by the grid (the presets are well-calibrated), and
* extreme mis-calibrations (no locality term, overlap grossly
  over-weighted) score measurably worse.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.model import XEON_HASWELL, CostModel, CostWeights, calibrate_weights
from repro.pipelines import harris, interpolate, unsharp
from repro.reporting import format_table


@pytest.fixture(scope="module")
def calibration():
    # Paper-size builds: the weights were calibrated at evaluation sizes,
    # and tile/footprint trade-offs shift with the image size.
    from repro.pipelines import bilateral

    pipelines = [
        unsharp.build(),
        harris.build(),
        bilateral.build(),
    ]
    base = XEON_HASWELL.weights
    return calibrate_weights(
        pipelines,
        XEON_HASWELL,
        w1_grid=(0.0, base.w1, 3 * base.w1),
        w2_grid=(base.w2,),
        w3_grid=(0.0, base.w3, 10 * base.w3),
        w4_grid=(base.w4,),
        max_states=400_000,
    )


def test_calibration_report(calibration):
    rows = []
    for weights, score in calibration.scores:
        rows.append([
            weights.w1, weights.w2, weights.w3, weights.w4,
            round(score, 4),
        ])
    text = format_table(
        "Empirical trial: weight candidates by geometric-mean slowdown",
        ["w1", "w2", "w3", "w4", "gmean slowdown"],
        rows,
        note="1.0 = best schedule found for every pipeline.",
    )
    print("\n" + text)
    write_result("calibration.txt", text)


def test_shipped_weights_near_best(calibration):
    base = XEON_HASWELL.weights
    shipped = next(
        score for weights, score in calibration.scores
        if weights == CostWeights(base.w1, base.w2, base.w3, base.w4)
    )
    assert shipped <= calibration.scores[0][1] * 1.10


def test_degenerate_weights_score_worse(calibration):
    # w1 = 0 (no locality term) must not be the winner.
    best = calibration.best
    assert best.w1 > 0.0


def test_calibration_speed(benchmark):
    pipes = [unsharp.build(512, 384)]
    benchmark(
        lambda: calibrate_weights(
            pipes, XEON_HASWELL,
            w1_grid=(1.0,), w2_grid=(0.4,), w3_grid=(3.0,), w4_grid=(1.5,),
        )
    )
