"""Steady-state serving throughput vs one-shot runs.

The serve layer's reason to exist is amortization: a one-shot ``repro
run`` pays scheduling, kernel compilation, pool setup, and thread-pool
construction on *every* invocation, while a warm
:class:`repro.serve.PipelineHost` pays them once.  This benchmark
measures that directly, per pipeline:

* **one-shot**: each iteration clears the kernel cache, rebuilds the
  pipeline, re-schedules it (the CLI's degrade-mode path), and executes
  once — everything a fresh process pays except interpreter startup,
  which would only widen the gap.
* **serve**: one warm :class:`~repro.serve.PipelineService`, then N
  requests submitted back-to-back through the micro-batching queue.
* **serve+workers**: the same service with ``--workers`` crash-isolated
  worker processes forked after warm-up; requests execute in the
  workers with outputs returning through shared memory.  The recorded
  ``scaling_vs_single_process`` is this mode's throughput over the
  single-process serve throughput — on a multi-core host it shows the
  worker tier escaping the single GIL; on a single-core host (the
  payload records ``cpu_count``) the workers timeshare one core and the
  honest expectation is ~1x, the point being that crash isolation costs
  little even with no parallelism to win.

All paths produce digests for the same seed, so the run doubles as a
bit-identity check across the process boundary.  Results land in
``BENCH_serve.json``; ``--check`` exits nonzero unless serving is at
least ``--min-speedup`` (default 3x) faster per request on every
measured pipeline and all digests match.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py \
        --pipelines UM HC --requests 50 --workers 2 --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.model.machine import XEON_HASWELL
from repro.planner import (
    build_benchmark,
    make_inputs,
    output_digests,
    plan_schedule,
)
from repro.resilience import GuardPolicy, execute_guarded
from repro.runtime import clear_kernel_cache
from repro.serve import HostConfig, PipelineService, ServeConfig

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve.json",
)

SCALE = 0.05
THREADS = 4
SEED = 0


def oneshot_once(key: str) -> Dict[str, str]:
    """One cold request: schedule, compile, execute from scratch."""
    clear_kernel_cache()
    bench, pipe = build_benchmark(key, SCALE)
    grouping, _ = plan_schedule(pipe, bench, XEON_HASWELL, "dp",
                                1_200_000, strict=False)
    report = execute_guarded(
        pipe, grouping, make_inputs(pipe, SEED), nthreads=THREADS,
        policy=GuardPolicy(tile_retries=1, degrade=True),
    )
    return output_digests(report.outputs)


def bench_pipeline(service: PipelineService, key: str,
                   oneshot_reps: int, requests: int) -> Dict:
    # one-shot: full cold path per iteration
    t0 = time.perf_counter()
    for _ in range(oneshot_reps):
        oneshot_digest = oneshot_once(key)
    oneshot_s = (time.perf_counter() - t0) / oneshot_reps

    # serve: warm outside the window, then N requests through the queue
    host = service.host(key)
    service.submit(key, seed=SEED).result(timeout=300)
    t0 = time.perf_counter()
    futures = [service.submit(key, seed=SEED) for _ in range(requests)]
    results = [f.result(timeout=300) for f in futures]
    serve_total_s = time.perf_counter() - t0
    serve_s = serve_total_s / requests

    serve_digests = {output_digests(r.outputs)[name]
                     for r in results for name in r.outputs}
    expected = set(oneshot_digest.values())
    return {
        "pipeline": key,
        "requests": requests,
        "oneshot_reps": oneshot_reps,
        "oneshot_s_per_request": round(oneshot_s, 6),
        "serve_s_per_request": round(serve_s, 6),
        "serve_throughput_rps": round(requests / serve_total_s, 3),
        "speedup": round(oneshot_s / serve_s, 3),
        "warm_s": round(host.warm_s, 4),
        "mean_batch_size": round(
            sum(r.batch_size for r in results) / len(results), 3
        ),
        "digests_match": serve_digests == expected,
        "digest": sorted(expected),
    }


def bench_workers(keys: List[str], requests: int, workers: int,
                  singles: Dict[str, Dict]) -> List[Dict]:
    """Measure the worker-tier service on the same pipelines; returns
    one record per pipeline referencing the single-process baseline."""
    service = PipelineService(ServeConfig(
        host=HostConfig(scale=SCALE, threads=THREADS),
        max_queue=max(256, requests * 2),
        workers=workers,
        dispatchers=max(1, workers),
        heartbeat_s=0.5,
        worker_timeout_s=300.0,
    )).start()
    records = []
    try:
        service.warm(keys)
        service.start_workers()
        for key in keys:
            service.submit(key, seed=SEED).result(timeout=300)  # prime
            t0 = time.perf_counter()
            futures = [service.submit(key, seed=SEED)
                       for _ in range(requests)]
            results = [f.result(timeout=300) for f in futures]
            total_s = time.perf_counter() - t0
            rps = requests / total_s
            digests = {output_digests(r.outputs)[name]
                       for r in results for name in r.outputs}
            expected = set(singles[key]["digest"])
            single_rps = singles[key]["serve_throughput_rps"]
            pids = {r.worker for r in results}
            records.append({
                "pipeline": key,
                "mode": "workers",
                "workers": workers,
                "requests": requests,
                "serve_s_per_request": round(total_s / requests, 6),
                "serve_throughput_rps": round(rps, 3),
                "scaling_vs_single_process": round(rps / single_rps, 3),
                "worker_processes_used": len(pids - {None}),
                "mean_batch_size": round(
                    sum(r.batch_size for r in results) / len(results), 3
                ),
                "digests_match": digests == expected,
            })
            rec = records[-1]
            print(f"{key} x{workers} workers: "
                  f"{rec['serve_throughput_rps']:.1f} rps "
                  f"({rec['scaling_vs_single_process']:.2f}x single-"
                  f"process, digests_match={rec['digests_match']})")
    finally:
        service.shutdown(timeout_s=120.0)
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pipelines", nargs="+", default=["UM", "HC"])
    parser.add_argument("--requests", type=int, default=50,
                        help="served requests per pipeline")
    parser.add_argument("--oneshot-reps", type=int, default=3,
                        help="cold one-shot iterations per pipeline")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--workers", type=int, default=2,
                        help="also measure a service with this many "
                             "worker processes (0 skips the mode)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every pipeline serves at "
                             ">= --min-speedup vs one-shot with matching "
                             "digests")
    args = parser.parse_args(argv)

    service = PipelineService(ServeConfig(
        host=HostConfig(scale=SCALE, threads=THREADS),
        max_queue=max(256, args.requests * 2),
    )).start()
    try:
        records = []
        for key in args.pipelines:
            rec = bench_pipeline(service, key, args.oneshot_reps,
                                 args.requests)
            records.append(rec)
            print(f"{key}: one-shot {rec['oneshot_s_per_request']:.3f}s"
                  f"/req, served {rec['serve_s_per_request']:.4f}s/req "
                  f"({rec['serve_throughput_rps']:.1f} rps, "
                  f"{rec['speedup']:.1f}x, digests_match="
                  f"{rec['digests_match']})")
    finally:
        service.shutdown(timeout_s=120.0)

    if args.workers > 0:
        singles = {r["pipeline"]: r for r in records}
        records.extend(bench_workers(
            args.pipelines, args.requests, args.workers, singles,
        ))

    payload = {
        "benchmark": "serve_throughput",
        "description": "cold schedule+compile+execute per request vs a "
                       "warm PipelineService, same seed and scale "
                       f"({SCALE}), {THREADS} executor threads; "
                       "mode=workers rows execute in forked worker "
                       "processes with shared-memory output transport",
        "scale": SCALE,
        "threads": THREADS,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "results": records,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        bad = [r["pipeline"] for r in records
               if r["speedup"] < args.min_speedup
               or not r["digests_match"]]
        if bad:
            print(f"FAIL: serve speedup < {args.min_speedup}x or digest "
                  f"mismatch on {bad}")
            return 1
        print(f"PASS: serving >= {args.min_speedup}x one-shot throughput "
              f"with bit-identical outputs on all measured pipelines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
