"""Table 5 — cache hit/miss fractions for Unsharp Mask tile choices.

The paper measured, with hardware counters on the Xeon, the L1-hit /
L2-hit / L2-miss fractions of four tile configurations for the fully
fused Unsharp Mask, showing that the model's 5x256 L1 tile has by far the
lowest L2-miss fraction and the best runtime — the justification for
Algorithm 2's L1-first tile sizing.  We reproduce the experiment with the
set-associative LRU cache simulator over the actual tiled access stream,
plus the timing model's runtime estimate per configuration.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.fusion import manual_grouping
from repro.model import XEON_HASWELL
from repro.perfmodel import estimate_runtime
from repro.perfmodel.cachesim import simulate_group_cache
from repro.pipelines import unsharp
from repro.reporting import format_table

#: (x, y) tile configurations of Table 5 with the paper's measured rows
#: (L1 HIT %, L2 HIT %, L2 MISS %, runtime ms).
PAPER_ROWS = {
    (128, 256): (83.43, 5.04, 11.52, 10.7),
    (16, 256): (82.05, 12.36, 5.59, 10.3),
    (8, 416): (83.34, 11.2, 5.46, 9.3),
    (5, 256): (95.55, 1.50, 2.85, 8.8),
}


@pytest.fixture(scope="module")
def table5():
    pipe = unsharp.build()  # paper size
    members = tuple(pipe.stages)
    rows = {}
    for (tx, ty), paper in PAPER_ROWS.items():
        stats = simulate_group_cache(
            pipe, members, (3, tx, ty), XEON_HASWELL, max_tiles=8
        )
        grouping = manual_grouping(
            pipe, [[s.name for s in members]], [[3, tx, ty]]
        )
        runtime = estimate_runtime(pipe, grouping, XEON_HASWELL, 16) * 1e3
        rows[(tx, ty)] = (stats, runtime, paper)
    return rows


def test_table5_report(table5):
    out = []
    for (tx, ty), (stats, runtime, paper) in table5.items():
        l1, l2, miss = stats.row()
        out.append([
            f"{tx}x{ty}",
            round(l1, 2), paper[0],
            round(l2, 2), paper[1],
            round(miss, 2), paper[2],
            round(runtime, 2), paper[3],
        ])
    text = format_table(
        "Table 5: Unsharp Mask cache behaviour per tile size (measured | paper)",
        ["tile", "L1 HIT%", "paper", "L2 HIT%", "paper",
         "L2 MISS%", "paper", "ms", "paper"],
        out,
    )
    print("\n" + text)
    write_result("table5_cache.txt", text)


class TestPaperShape:
    def test_5x256_has_lowest_miss_fraction(self, table5):
        misses = {t: stats.l2_miss_frac for t, (stats, _, _) in table5.items()}
        assert min(misses, key=misses.get) == (5, 256)

    def test_128x256_has_highest_miss_fraction(self, table5):
        misses = {t: stats.l2_miss_frac for t, (stats, _, _) in table5.items()}
        assert max(misses, key=misses.get) == (128, 256)

    def test_5x256_has_highest_l1_hits(self, table5):
        l1 = {t: stats.l1_hit_frac for t, (stats, _, _) in table5.items()}
        assert max(l1, key=l1.get) == (5, 256)

    def test_l1_tile_is_fastest(self, table5):
        times = {t: rt for t, (_, rt, _) in table5.items()}
        assert min(times, key=times.get) == (5, 256)

    def test_model_actually_picks_the_l1_tile(self):
        """Algorithm 2 must choose a thin L1 tile with a 256-wide inner
        extent on its own — the paper's 'our heuristic automatically
        takes care of this'."""
        from repro.model import group_cost

        pipe = unsharp.build()
        gc = group_cost(pipe, pipe.stages, XEON_HASWELL)
        assert gc.cache_level == "L1"
        assert gc.tile_sizes[-1] == 256
        assert gc.tile_sizes[1] <= 16  # thin along x, like 5x256


def test_cache_simulation_speed(benchmark):
    pipe = unsharp.build(1024, 768)
    members = tuple(pipe.stages)
    benchmark(
        lambda: simulate_group_cache(
            pipe, members, (3, 5, 256), XEON_HASWELL, max_tiles=2
        )
    )
