"""Chaos smoke test of the worker tier (the CI ``chaos-smoke`` job).

Boots ``repro serve --workers 2`` as a subprocess, fires concurrent
HTTP requests, and SIGKILLs one worker process mid-load.  The
supervision contract under test:

* the dead worker is respawned from the warm template (``/healthz``
  reports ``restarts >= 1`` and a full complement of live workers with
  a new pid);
* no admitted request fails beyond the bounded retry — with a single
  kill, the at-most-once redrive absorbs every in-flight loss, so
  every request must return 200 with digests bit-identical to a
  one-shot ``repro run --digest``;
* no shared-memory segment owned by the server or any worker pid —
  including the killed one — survives in ``/dev/shm`` after shutdown;
* SIGTERM still drains clean and exits 0.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
    PYTHONPATH=src python benchmarks/chaos_smoke.py --requests 30
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set

SCALE = 0.05
SEED = 0
PIPELINE = "UM"


def repro_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def oneshot_digests() -> Dict[str, str]:
    out = subprocess.run(
        [sys.executable, "-m", "repro", "run", PIPELINE,
         "--scale", str(SCALE), "--seed", str(SEED), "--threads", "2",
         "--digest"],
        env=repro_env(), capture_output=True, text=True, timeout=600,
        check=True,
    ).stdout
    digests = dict(
        m.groups() for m in re.finditer(r"^digest (\S+) ([0-9a-f]{64})$",
                                        out, re.MULTILINE)
    )
    assert digests, f"no digest lines in repro run output:\n{out}"
    return digests


def get_json(base: str, path: str) -> Dict:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return json.loads(resp.read())


def serve_request(base: str):
    """One POST /run; returns ('ok', digest-dict) or ('err', code)."""
    req = urllib.request.Request(
        base + "/run",
        data=json.dumps({"pipeline": PIPELINE, "seed": SEED}).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            body = json.loads(resp.read())
        return "ok", {n: o["sha256"] for n, o in body["outputs"].items()}
    except urllib.error.HTTPError as err:
        return "err", json.loads(err.read())["error"]["code"]


def worker_pids(base: str) -> List[int]:
    tier = get_json(base, "/healthz").get("workers") or {}
    return [w["pid"] for w in tier.get("workers", [])
            if w.get("state") == "live"]


def shm_leftovers(pids: Set[int]) -> List[str]:
    shm = "/dev/shm"
    if not os.path.isdir(shm):
        return []
    return [
        name for name in os.listdir(shm)
        if name.startswith("repro-shm-")
        and any(f"-{pid}-" in name for pid in pids)
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=24,
                        help="requests fired across the kill window")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    expected = oneshot_digests()
    print(f"one-shot digests: {sorted(expected.values())}")

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", str(SCALE), "--threads", "2",
         "--warm", PIPELINE, "--workers", str(args.workers),
         "--heartbeat-s", "0.2", "--batch-window-ms", "1"],
        env=repro_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    seen_pids: Set[int] = {proc.pid}
    try:
        base = None
        deadline = time.time() + 300
        for line in proc.stdout:
            print(f"[serve] {line.rstrip()}")
            m = re.search(r"serving on (http://\S+?)[\s(]", line + " ")
            if m:
                base = m.group(1).rstrip("/")
                break
            if time.time() > deadline:
                break
        assert base, "server never reported its address"

        for _ in range(600):
            try:
                with urllib.request.urlopen(base + "/healthz",
                                            timeout=5) as resp:
                    if resp.status == 200:
                        break
            except Exception:
                time.sleep(0.1)
        else:
            raise AssertionError("healthz never became ready")

        pids = worker_pids(base)
        assert len(pids) == args.workers, f"worker tier not up: {pids}"
        seen_pids.update(pids)
        victim = pids[0]
        print(f"server ready at {base}, workers {pids}, victim {victim}")

        # concurrent load; SIGKILL the victim once requests are in flight
        with ThreadPoolExecutor(max_workers=8) as tp:
            futures = [tp.submit(serve_request, base)
                       for _ in range(args.requests)]
            time.sleep(0.15)
            os.kill(victim, signal.SIGKILL)
            print(f"SIGKILLed worker {victim} mid-load")
            outcomes = [f.result() for f in futures]

        failures = [code for kind, code in outcomes if kind == "err"]
        assert not failures, (
            f"{len(failures)} requests failed despite bounded retry: "
            f"{failures}"
        )
        mismatched = [d for kind, d in outcomes
                      if kind == "ok" and d != expected]
        assert not mismatched, f"digest mismatches: {mismatched[:3]}"
        print(f"{len(outcomes)} requests all served bit-identically "
              f"across the kill")

        # respawn: full complement of live workers, victim gone
        deadline = time.time() + 60
        while time.time() < deadline:
            pids = worker_pids(base)
            seen_pids.update(pids)
            tier = get_json(base, "/healthz").get("workers") or {}
            if (len(pids) == args.workers and victim not in pids
                    and tier.get("restarts", 0) >= 1):
                break
            time.sleep(0.1)
        else:
            raise AssertionError(
                f"worker {victim} never respawned: pids={pids}"
            )
        print(f"respawned: workers {pids}, restarts={tier['restarts']}, "
              f"retries={tier.get('retries')}, lost={tier.get('lost')}")
        assert tier.get("lost", 0) == 0, "requests lost beyond retry"

        proc.send_signal(signal.SIGTERM)
        tail = proc.stdout.read()
        for line in tail.splitlines():
            print(f"[serve] {line}")
        rc = proc.wait(timeout=300)
        assert rc == 0, f"server exited {rc} after SIGTERM"
        assert "drained clean=True" in tail, "drain was not clean"
        print("SIGTERM drain clean, exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)

    # crash-safe reclamation: nothing owned by any pid we ever saw —
    # server, live workers, or the SIGKILLed victim — remains mapped
    deadline = time.time() + 10
    left = shm_leftovers(seen_pids)
    while left and time.time() < deadline:
        time.sleep(0.2)
        left = shm_leftovers(seen_pids)
    assert not left, f"leaked shared-memory segments: {left}"
    print(f"/dev/shm clean for pids {sorted(seen_pids)}")
    print("PASS: chaos smoke")
    return 0


if __name__ == "__main__":
    sys.exit(main())
