"""Table 3 — execution times on the Intel Xeon (Haswell), 1 and 16 cores.

For every benchmark, the four configurations of the paper's comparison
(H-manual, H-auto, PolyMage-A, PolyMageDP) are scheduled at the paper's
image sizes and priced with the analytic timing model (the testbed
substitute).  Paper milliseconds are shown alongside; the claim under test
is the *shape* — who wins and by roughly what factor — not absolute
numbers.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import CONFIGS, paper_time, run_benchmark, write_result
from repro.model import XEON_HASWELL
from repro.perfmodel import estimate_runtime
from repro.pipelines import BENCHMARKS
from repro.reporting import format_speedup, format_table

MACHINE = XEON_HASWELL
ORDER = ["UM", "HC", "BG", "MI", "CP", "PB"]


@pytest.fixture(scope="module")
def results():
    return {ab: run_benchmark(ab, MACHINE) for ab in ORDER}


def _rows(results):
    rows = []
    for ab in ORDER:
        r = results[ab]
        bench = BENCHMARKS[ab]
        row = [bench.name]
        for cfg, _ in CONFIGS:
            for nt in (1, 16):
                row.append(round(r.times_ms[(cfg, nt)], 2))
                row.append(paper_time(bench, MACHINE, cfg, nt))
        dp16 = r.times_ms[("PolyMageDP", 16)]
        row.append(format_speedup(dp16, r.times_ms[("H-manual", 16)]))
        row.append(format_speedup(dp16, r.times_ms[("H-auto", 16)]))
        row.append(format_speedup(dp16, r.times_ms[("PolyMage-A", 16)]))
        rows.append(row)
    return rows


def test_table3_report(results):
    headers = ["benchmark"]
    for cfg, _ in CONFIGS:
        for nt in (1, 16):
            headers += [f"{cfg}/{nt}", "paper"]
    headers += ["vs H-man", "vs H-auto", "vs P-A"]
    text = format_table(
        "Table 3: execution times (ms) on Intel Xeon Haswell (measured | paper)",
        headers,
        _rows(results),
    )
    print("\n" + text)
    write_result("table3_xeon.txt", text)


class TestPaperShape:
    """The qualitative claims of Table 3 that must reproduce."""

    def test_dp_beats_polymage_a_on_unsharp(self, results):
        r = results["UM"].times_ms
        assert r[("PolyMageDP", 16)] < r[("PolyMage-A", 16)]

    def test_dp_beats_h_manual_on_unsharp_and_harris(self, results):
        for ab in ("UM", "HC"):
            r = results[ab].times_ms
            assert r[("PolyMageDP", 16)] < r[("H-manual", 16)]

    def test_dp_at_least_parity_with_polymage_a_everywhere(self, results):
        # Paper: speedup over PolyMage-A >= 1.02 on every benchmark.
        for ab in ORDER:
            r = results[ab].times_ms
            assert r[("PolyMageDP", 16)] <= r[("PolyMage-A", 16)] * 1.10, ab

    def test_halide_wins_bilateral_grid(self, results):
        # Paper Sec. 6.2: H-manual/H-auto fuse the histogram reduction,
        # PolyMage does not — they win BG.
        r = results["BG"].times_ms
        h_best = min(r[("H-manual", 16)], r[("H-auto", 16)])
        assert h_best < r[("PolyMageDP", 16)]

    def test_h_manual_trails_on_pyramid_blend(self, results):
        # Paper: H-manual PB is the slowest configuration by far.
        r = results["PB"].times_ms
        assert r[("H-manual", 16)] > r[("PolyMageDP", 16)]
        assert r[("H-manual", 16)] == max(
            r[(cfg, 16)] for cfg, _ in CONFIGS
        )

    def test_all_configs_scale_with_threads(self, results):
        for ab in ORDER:
            r = results[ab].times_ms
            for cfg, _ in CONFIGS:
                assert r[(cfg, 16)] < r[(cfg, 1)], (ab, cfg)


def test_timing_model_speed(benchmark, results):
    """One full-schedule pricing call (the auto-tuner's inner loop)."""
    r = results["HC"]
    pipe = r.groupings["PolyMageDP"].pipeline
    g = r.groupings["PolyMageDP"]
    benchmark(lambda: estimate_runtime(pipe, g, MACHINE, 16))
