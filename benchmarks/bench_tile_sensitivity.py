"""Extension experiment — tile-size sensitivity around the model's choice.

Table 5 samples four tile configurations for Unsharp Mask; this bench
sweeps a full grid for Unsharp Mask *and* Harris Corner, showing how the
estimated run time, overlap fraction and resident set move with the tile
shape, and checks that Algorithm 2's own choice lands within a few
percent of the swept optimum — the property that makes the model usable
without auto-tuning.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.fusion import dp_group
from repro.model import XEON_HASWELL
from repro.perfmodel import estimate_runtime, sweep_tiles
from repro.pipelines import harris, unsharp
from repro.reporting import format_table

OUTER = (4, 5, 8, 16, 32, 64, 128)
INNER = (64, 128, 256)


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for name, build in (("UM", unsharp.build), ("HC", harris.build)):
        pipe = build()
        points = sweep_tiles(
            pipe, pipe.stages, XEON_HASWELL,
            outer_sizes=OUTER, inner_sizes=INNER,
        )
        dp = dp_group(pipe, XEON_HASWELL)
        model_ms = estimate_runtime(pipe, dp, XEON_HASWELL, 16) * 1e3
        out[name] = (pipe, points, dp, model_ms)
    return out


def test_sensitivity_report(sweeps):
    rows = []
    for name, (pipe, points, dp, model_ms) in sweeps.items():
        for p in points[:6]:
            rows.append([
                name if p is points[0] else "",
                "x".join(map(str, p.tile_sizes)),
                round(p.estimated_ms, 3),
                f"{100 * p.overlap_fraction:.1f}%",
                round(p.resident_bytes / 1024, 1),
                "L1" if p.fits_l1 else "-",
            ])
        rows.append([
            "", f"model choice {list(dp.tile_sizes[0])}",
            round(model_ms, 3), "", "", "",
        ])
    text = format_table(
        "Tile-size sensitivity (Xeon, 16 cores): best swept configurations",
        ["benchmark", "tile", "est. ms", "overlap", "resident KB", "cache"],
        rows,
    )
    print("\n" + text)
    write_result("tile_sensitivity.txt", text)


def test_model_choice_near_swept_optimum(sweeps):
    for name, (pipe, points, dp, model_ms) in sweeps.items():
        best = points[0].estimated_ms
        # group-level sweep times exclude the per-group overhead the full
        # estimate includes; compare with a tolerant factor.
        assert model_ms <= best * 1.35 + 0.5, (name, model_ms, best)


def test_optimum_is_l1_resident(sweeps):
    # The best swept configuration keeps its resident set in L1 for both
    # stencil benchmarks (the Table 5 moral).
    for name, (pipe, points, dp, model_ms) in sweeps.items():
        assert points[0].fits_l1, name


def test_sweep_speed(benchmark):
    pipe = unsharp.build(1024, 768)
    benchmark(
        lambda: sweep_tiles(
            pipe, pipe.stages, XEON_HASWELL, outer_sizes=(8, 32),
            inner_sizes=(128,),
        )
    )
