"""Sec. 6.2 isolation experiment — Harris Corner.

The paper isolates the benefit of the *decisions* (grouping, tile sizes)
from the backend: plugging PolyMageDP's grouping into the Halide manual
schedule dropped H-manual from 33.0 ms to 12.6 ms on the Xeon, and adding
PolyMageDP's tile sizes dropped it to 8.8 ms (beating H-auto).

We reproduce the experiment by pricing, under the *Halide* code
generator:

1. the original H-manual schedule,
2. PolyMageDP's grouping with H-manual-style power-of-two tiles,
3. PolyMageDP's grouping with PolyMageDP's tile sizes.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.fusion import Grouping, dp_group
from repro.fusion.grouping import GroupingStats
from repro.model import XEON_HASWELL
from repro.perfmodel import estimate_runtime
from repro.pipelines import harris
from repro.reporting import format_table

PAPER = {"h_manual": 33.0, "dp_grouping": 12.6, "dp_grouping_tiles": 8.8}


@pytest.fixture(scope="module")
def variants():
    pipe = harris.build()
    h_manual = harris.h_manual(pipe)
    dp = dp_group(pipe, XEON_HASWELL)

    # DP grouping, Halide-style tiles: round each DP tile to a power of
    # two (Halide's scheduler cannot express 5x256-style sizes).
    def pow2(v):
        p = 1
        while p * 2 <= v:
            p *= 2
        return p

    halide_tiles = tuple(
        tuple(pow2(t) if t > 3 else t for t in tiles) for tiles in dp.tile_sizes
    )
    dp_halide_tiles = Grouping(
        pipeline=pipe,
        groups=dp.groups,
        tile_sizes=halide_tiles,
        cost=0.0,
        stats=GroupingStats(strategy="dp-grouping+pow2-tiles"),
    )
    return pipe, {
        "h_manual": h_manual,
        "dp_grouping": dp_halide_tiles,
        "dp_grouping_tiles": dp,
    }


@pytest.fixture(scope="module")
def timed(variants):
    pipe, groupings = variants
    return {
        name: estimate_runtime(pipe, g, XEON_HASWELL, 16, codegen="halide") * 1e3
        for name, g in groupings.items()
    }


def test_isolation_report(timed):
    rows = [
        ["H-manual (original)", round(timed["h_manual"], 2), PAPER["h_manual"]],
        ["+ PolyMageDP grouping", round(timed["dp_grouping"], 2),
         PAPER["dp_grouping"]],
        ["+ PolyMageDP tile sizes", round(timed["dp_grouping_tiles"], 2),
         PAPER["dp_grouping_tiles"]],
    ]
    text = format_table(
        "Sec 6.2 isolation: Harris under the Halide backend (ms, measured | paper)",
        ["configuration", "measured", "paper"],
        rows,
    )
    print("\n" + text)
    write_result("isolation_harris.txt", text)


def test_dp_grouping_improves_h_manual(timed):
    assert timed["dp_grouping"] < timed["h_manual"]


def test_dp_tiles_improve_further_or_match(timed):
    assert timed["dp_grouping_tiles"] <= timed["dp_grouping"] * 1.02


def test_isolation_pipeline_speed(benchmark, variants):
    pipe, groupings = variants
    benchmark(
        lambda: estimate_runtime(
            pipe, groupings["dp_grouping_tiles"], XEON_HASWELL, 16,
            codegen="halide",
        )
    )
