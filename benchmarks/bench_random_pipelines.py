"""Extension experiment — the model-driven DP vs greedy on random
pipelines.

The paper's central workflow claim is that PolyMageDP is "completely
model-driven — it alleviates the need for auto-tuning" (Sec. 1) while
staying "better than or competitive with an auto-tuned approach"
(Sec. 6.2).  The six benchmarks give six data points; here we quantify it
over a population of random pipelines (`repro.pipelines.synth`):

* **DP vs auto-tuned greedy** (PolyMage-A with its 18-configuration
  sweep measured by the same oracle): the one-shot DP must stay within a
  tolerance of the sweep's winner on every pipeline — competitive with
  tuning, at zero tuning cost.
* **DP vs untuned greedy** (one fixed, reasonable configuration — what a
  user gets without the tuning budget): the DP should win outright on a
  meaningful fraction.

Most random pipelines are fully fusable, so both searches often find the
same *grouping* and the residual differences are tile-size choices —
which is exactly the regime where the analytic tile model is being
stress-tested against an oracle-measured sweep.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.fusion import dp_group, polymage_autotune, polymage_greedy
from repro.fusion.bounded import inc_grouping
from repro.fusion.dp import GroupingBudgetExceeded
from repro.model import XEON_HASWELL
from repro.perfmodel import estimate_runtime
from repro.pipelines.synth import random_pipeline
from repro.reporting import format_table

SEEDS = range(16)
SIZE = 1024
STAGES = 14


@pytest.fixture(scope="module")
def population():
    rows = []
    for seed in SEEDS:
        pipe = random_pipeline(num_stages=STAGES, seed=seed, size=SIZE)
        tuned = polymage_autotune(pipe, XEON_HASWELL).best
        fixed = polymage_greedy(pipe, XEON_HASWELL, tile_size=64,
                                overlap_tolerance=0.4)
        try:
            dp = dp_group(pipe, XEON_HASWELL, max_states=400_000)
        except GroupingBudgetExceeded:
            dp = inc_grouping(pipe, XEON_HASWELL, initial_limit=2, step=2,
                              max_states=400_000)
        t_tuned = estimate_runtime(pipe, tuned, XEON_HASWELL, 16) * 1e3
        t_fixed = estimate_runtime(pipe, fixed, XEON_HASWELL, 16) * 1e3
        t_dp = estimate_runtime(pipe, dp, XEON_HASWELL, 16) * 1e3
        rows.append((seed, pipe.num_stages, t_tuned, t_fixed, t_dp))
    return rows


def test_random_population_report(population):
    table = []
    for seed, stages, t_tuned, t_fixed, t_dp in population:
        table.append([
            seed, stages,
            round(t_tuned, 3), round(t_fixed, 3), round(t_dp, 3),
            f"{t_tuned / t_dp:.2f}x", f"{t_fixed / t_dp:.2f}x",
        ])
    ratios_tuned = sorted(t / d for _, _, t, _, d in population)
    ratios_fixed = sorted(f / d for _, _, _, f, d in population)
    table.append(["", "", "", "", "median",
                  f"{ratios_tuned[len(ratios_tuned) // 2]:.2f}x",
                  f"{ratios_fixed[len(ratios_fixed) // 2]:.2f}x"])
    text = format_table(
        "Random pipelines (Xeon, 16 cores): one-shot DP vs greedy",
        ["seed", "stages", "tuned ms", "fixed ms", "dp ms",
         "vs tuned", "vs fixed"],
        table,
        note="'tuned' = 18-configuration sweep with an oracle; "
             "'fixed' = single default configuration; DP uses no tuning.",
    )
    print("\n" + text)
    write_result("random_pipelines.txt", text)


def test_dp_competitive_with_oracle_tuned_sweep(population):
    # One model-driven pass stays within 25% of an 18-configuration
    # oracle-measured sweep on every random pipeline.
    for seed, stages, t_tuned, t_fixed, t_dp in population:
        assert t_dp <= t_tuned * 1.25, (seed, t_dp, t_tuned)


def test_dp_beats_untuned_greedy_on_a_meaningful_fraction(population):
    wins = sum(
        1 for *_, t_fixed, t_dp in [
            (r[0], r[1], r[3], r[4]) for r in population
        ] if t_fixed > t_dp * 1.05
    )
    assert wins >= len(population) // 4


def test_random_scheduling_speed(benchmark):
    pipe = random_pipeline(num_stages=STAGES, seed=3, size=SIZE)
    benchmark(lambda: dp_group(pipe, XEON_HASWELL, max_states=400_000))
