"""Backend smoke benchmark: CPU bit-identity + GPU two-level model.

Two halves, both runnable on CPU-only CI (no GPU, no CuPy):

1. **CPU bit-identity** — full-DP schedules on the six paper benchmarks
   through the backend seam must match the frozen seed baseline
   (``benchmarks/baselines/schedule_seed.json``) decision for decision:
   the backend refactor must be invisible on the CPU path.
2. **GPU two-level model** — the same pipelines scheduled for
   :data:`GPU_V100`: per final group, the block/warp tile sizes, the
   chosen mode (``warp``/``block``), and the search statistics.  The
   ``--check`` gate asserts the analytic contracts (warp divides block,
   shared-memory and register budgets respected, and the warp→block
   crossover flipping monotonically on a deepening synthetic stencil
   chain) rather than any time-based number, so it cannot flake on a
   loaded CI runner.

Results land in ``BENCH_backend.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend.py
    PYTHONPATH=src python benchmarks/bench_backend.py --check
    PYTHONPATH=src python benchmarks/bench_backend.py --pipelines UM BG
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.backend import gpu_group_cost
from repro.fusion import dp_group, inc_grouping
from repro.model import GPU_V100, XEON_HASWELL
from repro.model.cost import CostModel
from repro.model.tilesize import tile_residency_bytes
from repro.pipelines import BENCHMARKS

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "baselines", "schedule_seed.json")
DEFAULT_OUTPUT = os.path.join(os.path.dirname(HERE), "BENCH_backend.json")

MAX_STATES = 1_500_000


def _schedule(pipe, machine, abbrev: str):
    """The repo's standard full-DP dispatch (PB takes the incremental
    ramp, exactly like the CLI and bench_schedule_time.py)."""
    cm = CostModel(pipe, machine)
    if abbrev == "PB":
        g = inc_grouping(pipe, machine, initial_limit=2, step=2,
                        cost_model=cm, max_states=MAX_STATES, prune=True)
    else:
        g = dp_group(pipe, machine, cost_model=cm,
                     max_states=MAX_STATES, prune=True)
    return g, cm.evaluations


def _cpu_record(abbrev: str, base_by_key) -> dict:
    pipe = BENCHMARKS[abbrev].build()
    start = time.perf_counter()
    grouping, evals = _schedule(pipe, XEON_HASWELL, abbrev)
    seconds = time.perf_counter() - start
    rec = {
        "pipeline": abbrev,
        "machine": "xeon",
        "seconds": round(seconds, 6),
        "states": grouping.stats.enumerated,
        "cost_evaluations": evals,
        "num_groups": grouping.num_groups,
        "groups": grouping.group_names(),
        "tile_sizes": [list(t) for t in grouping.tile_sizes],
    }
    base = base_by_key.get((abbrev, "full_dp"))
    if base is not None:
        rec["bit_identical"] = (
            rec["groups"] == base["groups"]
            and rec["tile_sizes"] == base["tile_sizes"]
        )
    return rec


def _gpu_record(abbrev: str) -> dict:
    pipe = BENCHMARKS[abbrev].build()
    start = time.perf_counter()
    grouping, evals = _schedule(pipe, GPU_V100, abbrev)
    seconds = time.perf_counter() - start
    groups = []
    violations: List[str] = []
    for members, block in zip(grouping.groups, grouping.tile_sizes):
        cost = gpu_group_cost(pipe, members, GPU_V100)
        geom = cost.geom
        warp = cost.inner_tile_sizes
        names = sorted(s.name for s in members)
        groups.append({
            "stages": names,
            "block_tiles": list(cost.tile_sizes),
            "warp_tiles": list(warp),
            "level": cost.cache_level,
            "shared_bytes": round(
                tile_residency_bytes(geom, cost.tile_sizes), 1
            ),
            "register_bytes": round(tile_residency_bytes(geom, warp), 1),
        })
        for b, w in zip(cost.tile_sizes, warp):
            if b % w:
                violations.append(
                    f"{abbrev}/{names}: warp {warp} does not divide "
                    f"block {list(cost.tile_sizes)}"
                )
                break
        if (tile_residency_bytes(geom, cost.tile_sizes)
                > GPU_V100.shared_mem_per_block
                and not all(b == 1 for b in cost.tile_sizes)):
            violations.append(f"{abbrev}/{names}: block tile over budget")
        if (tile_residency_bytes(geom, warp) > GPU_V100.registers_per_warp
                and not all(w == 1 for w in warp)):
            violations.append(f"{abbrev}/{names}: warp tile over budget")
    return {
        "pipeline": abbrev,
        "machine": "gpu-v100",
        "seconds": round(seconds, 6),
        "states": grouping.stats.enumerated,
        "cost_evaluations": evals,
        "num_groups": grouping.num_groups,
        "groups": groups,
        "violations": violations,
    }


def _crossover_sweep() -> dict:
    """Warp→block crossover on a deepening synthetic stencil chain —
    the analytic shape the model must produce (deeper chains pay more
    warp-level halo until cooperative striping wins)."""
    sys.path.insert(0, os.path.join(os.path.dirname(HERE), "tests"))
    from test_gpu_tilesize import build_stencil_chain

    levels = []
    for depth in range(1, 13):
        pipe = build_stencil_chain(depth, 4)
        cost = gpu_group_cost(pipe, pipe.stages, GPU_V100)
        levels.append({"depth": depth, "level": cost.cache_level})
    flipped = False
    monotone = True
    for row in levels:
        if flipped and row["level"] != "block":
            monotone = False
        if row["level"] == "block":
            flipped = True
    return {"radius": 4, "sweep": levels,
            "crossed": flipped, "monotone": monotone}


def run(abbrevs: List[str], check: bool, output: str) -> int:
    base_by_key = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            base_by_key = {
                (r["pipeline"], r["strategy"]): r
                for r in json.load(fh)["results"]
            }

    cpu_records, gpu_records = [], []
    for ab in abbrevs:
        rec = _cpu_record(ab, base_by_key)
        cpu_records.append(rec)
        tag = {True: "bit-identical", False: "MISMATCH"}.get(
            rec.get("bit_identical"), "no baseline"
        )
        print(f"{ab:>3} cpu  {rec['seconds']:8.3f}s  "
              f"groups={rec['num_groups']}  {tag}")
        rec = _gpu_record(ab)
        gpu_records.append(rec)
        levels = ",".join(g["level"] for g in rec["groups"])
        print(f"{ab:>3} gpu  {rec['seconds']:8.3f}s  "
              f"groups={rec['num_groups']}  levels=[{levels}]"
              + (f"  VIOLATIONS={len(rec['violations'])}"
                 if rec["violations"] else ""))

    crossover = _crossover_sweep()
    print(f"crossover sweep (radius {crossover['radius']}): "
          f"crossed={crossover['crossed']} monotone={crossover['monotone']}")

    payload = {
        "benchmark": "backend",
        "description": "CPU bit-identity through the backend seam and "
                       "GPU two-level tile model outputs",
        "cpu_cores": os.cpu_count(),
        "baseline": os.path.relpath(BASELINE_PATH, os.path.dirname(HERE)),
        "cpu": cpu_records,
        "gpu": gpu_records,
        "crossover": crossover,
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {output}")

    if not check:
        return 0
    failed = False
    for rec in cpu_records:
        if rec.get("bit_identical") is False:
            print(f"FAIL: {rec['pipeline']} CPU schedule diverged from "
                  "the seed baseline")
            failed = True
        elif "bit_identical" not in rec:
            print(f"FAIL: no baseline row for {rec['pipeline']}/full_dp")
            failed = True
    for rec in gpu_records:
        for v in rec["violations"]:
            print(f"FAIL: {v}")
            failed = True
    if not crossover["crossed"]:
        print("FAIL: crossover sweep never reached block mode")
        failed = True
    if not crossover["monotone"]:
        print("FAIL: crossover is not monotone in chain depth")
        failed = True
    if not failed:
        print("PASS: CPU decisions bit-identical; GPU constraints and "
              "crossover shape hold")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipelines", nargs="+", choices=sorted(BENCHMARKS),
        default=sorted(BENCHMARKS),
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 on any bit-identity mismatch, capacity/divisibility "
             "violation, or a broken crossover shape",
    )
    args = parser.parse_args(argv)
    return run(args.pipelines, args.check, args.output)


if __name__ == "__main__":
    sys.exit(main())
