"""End-to-end smoke test of ``repro serve`` (the CI ``serve-smoke`` job).

Boots the server as a subprocess, waits for ``/healthz``, fires
concurrent HTTP requests against two benchmarks, and asserts that every
served digest is bit-identical to what a one-shot ``repro run --digest``
subprocess prints for the same seed and scale.  Finally sends SIGTERM
and asserts the graceful drain: the server exits 0 and reports every
admitted request completed.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
    PYTHONPATH=src python benchmarks/serve_smoke.py \
        --pipelines UM HC --requests 10
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

SCALE = 0.05
SEED = 0


def repro_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def oneshot_digests(key: str) -> Dict[str, str]:
    """Digests printed by a fresh ``repro run --digest`` process."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "run", key, "--scale", str(SCALE),
         "--seed", str(SEED), "--threads", "2", "--digest"],
        env=repro_env(), capture_output=True, text=True, timeout=600,
        check=True,
    ).stdout
    digests = dict(
        m.groups() for m in re.finditer(r"^digest (\S+) ([0-9a-f]{64})$",
                                        out, re.MULTILINE)
    )
    assert digests, f"no digest lines in repro run output:\n{out}"
    return digests


def serve_request(base: str, key: str) -> Dict[str, str]:
    req = urllib.request.Request(
        base + "/run",
        data=json.dumps({"pipeline": key, "seed": SEED}).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        body = json.loads(resp.read())
    return {name: o["sha256"] for name, o in body["outputs"].items()}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pipelines", nargs="+", default=["UM", "HC"])
    parser.add_argument("--requests", type=int, default=10,
                        help="concurrent requests per pipeline")
    args = parser.parse_args(argv)

    expected = {key: oneshot_digests(key) for key in args.pipelines}
    print(f"one-shot digests: "
          f"{ {k: sorted(v.values()) for k, v in expected.items()} }")

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--scale", str(SCALE), "--threads", "2",
         "--warm", *args.pipelines],
        env=repro_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # the CLI prints the bound address once the listener is up
        base = None
        deadline = time.time() + 300
        for line in proc.stdout:
            print(f"[serve] {line.rstrip()}")
            m = re.search(r"serving on (http://\S+?)[\s(]", line + " ")
            if m:
                base = m.group(1).rstrip("/")
                break
            if time.time() > deadline:
                break
        assert base, "server never reported its address"

        for _ in range(600):
            try:
                with urllib.request.urlopen(base + "/healthz",
                                            timeout=5) as resp:
                    if resp.status == 200:
                        break
            except Exception:
                time.sleep(0.1)
        else:
            raise AssertionError("healthz never became ready")
        print(f"server ready at {base}")

        jobs = [key for key in args.pipelines
                for _ in range(args.requests)]
        with ThreadPoolExecutor(max_workers=8) as tp:
            digests = list(tp.map(lambda k: (k, serve_request(base, k)),
                                  jobs))
        mismatches = [
            (key, got) for key, got in digests if got != expected[key]
        ]
        assert not mismatches, f"digest mismatches: {mismatches}"
        print(f"{len(jobs)} served requests bit-identical to one-shot "
              f"runs on {args.pipelines}")

        proc.send_signal(signal.SIGTERM)
        tail = proc.stdout.read()
        for line in tail.splitlines():
            print(f"[serve] {line}")
        rc = proc.wait(timeout=300)
        assert rc == 0, f"server exited {rc} after SIGTERM"
        assert "drained clean=True" in tail, "drain was not clean"
        print("SIGTERM drain clean, exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)
    print("PASS: serve smoke")
    return 0


if __name__ == "__main__":
    sys.exit(main())
