"""Autoscheduling wall-clock: seed baseline vs current code.

The paper's compile-time story (Sec. 5, Table 2) treats scheduling time as
a first-class quantity; so does this repo once it serves many pipelines
under traffic.  This benchmark times the three scheduling strategies on
all six registered benchmarks at their paper configuration:

* ``full_dp``     — the unbounded DP (Pyramid Blend runs the repo's
                    standard substitution, ``dp-incremental`` with
                    ``initial_limit=2, step=2``, exactly as the CLI does —
                    the unbounded DP on PB exceeds any state budget),
* ``bounded_dp``  — Algorithm 3 (``inc_grouping``, l0=8, step=4),
* ``greedy``      — PolyMage's greedy heuristic at fixed parameters.

Each measurement rebuilds the pipeline and uses a fresh cost model, so
every per-pipeline cache (geometry, access analysis, cost memo) starts
cold — the numbers are true cold-start scheduling times.

Results land in ``BENCH_schedule.json`` together with the speedup against
the frozen pre-optimization baseline (``benchmarks/baselines/
schedule_seed.json``).  The baseline also records the chosen groupings and
tile sizes; the script asserts the current code reproduces them
*bit-identically* — the optimizations must never change a scheduling
decision.

Usage::

    PYTHONPATH=src python benchmarks/bench_schedule_time.py
    PYTHONPATH=src python benchmarks/bench_schedule_time.py --check
    PYTHONPATH=src python benchmarks/bench_schedule_time.py --quick --budget-s 30
    PYTHONPATH=src python benchmarks/bench_schedule_time.py --capture-baseline
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Dict, List, Optional

from repro.fusion import dp_group, inc_grouping, polymage_greedy
from repro.model import XEON_HASWELL
from repro.model.cost import CostModel
from repro.pipelines import BENCHMARKS

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "baselines", "schedule_seed.json")
DEFAULT_OUTPUT = os.path.join(os.path.dirname(HERE), "BENCH_schedule.json")

#: geometric-mean full-DP speedup the optimized scheduler must reach
SPEEDUP_TARGET = 5.0

MAX_STATES = 1_500_000

STRATEGIES = ("full_dp", "bounded_dp", "greedy")


def _schedule(abbrev: str, strategy: str):
    """One cold-start scheduling run; returns (grouping, evaluations)."""
    bench = BENCHMARKS[abbrev]
    pipe = bench.build()  # fresh pipeline: all per-pipeline caches cold
    machine = XEON_HASWELL
    cm = CostModel(pipe, machine)
    if strategy == "full_dp":
        if abbrev == "PB":
            # The repo's standard dispatch: unbounded DP on Pyramid Blend
            # exceeds any reasonable state budget (the CLI substitutes the
            # same incremental configuration).
            g = inc_grouping(pipe, machine, initial_limit=2, step=2,
                             cost_model=cm, max_states=MAX_STATES,
                             prune=True)
        else:
            g = dp_group(pipe, machine, cost_model=cm, max_states=MAX_STATES,
                         prune=True)
    elif strategy == "bounded_dp":
        # PB's stage DAG explodes even at l=8; its known-good incremental
        # configuration is the (2, 2) ramp (Table 2's l=8 row analogue).
        init, step = (2, 2) if abbrev == "PB" else (8, 4)
        g = inc_grouping(pipe, machine, initial_limit=init, step=step,
                         cost_model=cm, max_states=MAX_STATES, prune=True)
    elif strategy == "greedy":
        g = polymage_greedy(pipe, machine)
    else:
        raise ValueError(strategy)
    return g, cm.evaluations


def _time_strategy(abbrev: str, strategy: str, repeats: int):
    """Best-of-``repeats`` cold-start wall clock plus the grouping found."""
    best = float("inf")
    grouping = None
    evals = 0
    for _ in range(repeats):
        start = time.perf_counter()
        grouping, evals = _schedule(abbrev, strategy)
        best = min(best, time.perf_counter() - start)
    return best, grouping, evals


def _record(abbrev: str, strategy: str, repeats: int) -> dict:
    seconds, grouping, evals = _time_strategy(abbrev, strategy, repeats)
    return {
        "pipeline": abbrev,
        "strategy": strategy,
        "seconds": round(seconds, 6),
        "states": grouping.stats.enumerated,
        "cost_evaluations": evals,
        "num_groups": grouping.num_groups,
        "cost": grouping.cost,
        "groups": grouping.group_names(),
        "tile_sizes": [list(t) for t in grouping.tile_sizes],
    }


def capture_baseline(abbrevs: List[str], repeats: int) -> int:
    """Freeze the current code's times and decisions as the baseline."""
    records = []
    for ab in abbrevs:
        for strategy in STRATEGIES:
            rec = _record(ab, strategy, repeats)
            records.append(rec)
            print(f"{ab:>3} {strategy:<10} {rec['seconds']:8.3f}s  "
                  f"states={rec['states']:>6}  evals={rec['cost_evaluations']}")
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as fh:
        json.dump({
            "description": "pre-optimization scheduling baseline "
                           "(times, groupings, tile sizes)",
            "machine": "xeon",
            "repeats": repeats,
            "results": records,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {BASELINE_PATH}")
    return 0


def _load_baseline() -> Optional[dict]:
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def run(abbrevs: List[str], repeats: int, check: bool,
        output: str, budget_s: Optional[float]) -> int:
    baseline = _load_baseline()
    base_by_key: Dict[tuple, dict] = {}
    if baseline is not None:
        base_by_key = {
            (r["pipeline"], r["strategy"]): r for r in baseline["results"]
        }

    records = []
    mismatches: List[str] = []
    over_budget: List[str] = []
    for ab in abbrevs:
        for strategy in STRATEGIES:
            rec = _record(ab, strategy, repeats)
            base = base_by_key.get((ab, strategy))
            if base is not None:
                rec["baseline_seconds"] = base["seconds"]
                rec["speedup"] = round(base["seconds"] / rec["seconds"], 3) \
                    if rec["seconds"] > 0 else float("inf")
                if rec["groups"] != base["groups"]:
                    mismatches.append(f"{ab}/{strategy}: groups changed")
                if rec["tile_sizes"] != base["tile_sizes"]:
                    mismatches.append(f"{ab}/{strategy}: tile sizes changed")
            if (budget_s is not None and strategy == "full_dp"
                    and rec["seconds"] > budget_s):
                over_budget.append(
                    f"{ab}/{strategy}: {rec['seconds']:.2f}s > {budget_s}s"
                )
            records.append(rec)
            speed = rec.get("speedup")
            print(f"{ab:>3} {strategy:<10} {rec['seconds']:8.3f}s  "
                  f"states={rec['states']:>6}  "
                  f"evals={rec['cost_evaluations']:>5}"
                  + (f"  speedup {speed:6.2f}x" if speed else ""))

    full_dp_speedups = [
        r["speedup"] for r in records
        if r["strategy"] == "full_dp" and "speedup" in r
    ]
    geomean = None
    if full_dp_speedups:
        geomean = math.exp(
            sum(math.log(s) for s in full_dp_speedups) / len(full_dp_speedups)
        )
        print(f"full-DP geometric-mean speedup: {geomean:.2f}x "
              f"(target {SPEEDUP_TARGET}x)")

    payload = {
        "benchmark": "schedule_time",
        "description": "cold-start autoscheduling wall clock vs the "
                       "frozen pre-optimization baseline",
        "repeats": repeats,
        "baseline": os.path.relpath(BASELINE_PATH, os.path.dirname(HERE)),
        "full_dp_geomean_speedup":
            round(geomean, 3) if geomean is not None else None,
        "results": records,
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {output}")

    failed = False
    if mismatches:
        print("FAIL: scheduling decisions changed vs the baseline:")
        for m in mismatches:
            print(f"  {m}")
        failed = True
    if over_budget:
        print("FAIL: full-DP wall-clock budget exceeded:")
        for m in over_budget:
            print(f"  {m}")
        failed = True
    if check:
        if geomean is None:
            print("FAIL: no baseline to compare against "
                  "(run --capture-baseline on the seed code first)")
            failed = True
        elif geomean < SPEEDUP_TARGET:
            print(f"FAIL: geomean speedup {geomean:.2f}x < "
                  f"{SPEEDUP_TARGET}x target")
            failed = True
        elif not failed:
            print(f"PASS: {geomean:.2f}x geomean full-DP speedup, "
                  "decisions bit-identical")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipelines", nargs="+", choices=sorted(BENCHMARKS),
        default=sorted(BENCHMARKS),
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--capture-baseline", action="store_true",
        help="record the CURRENT code's times and decisions as the "
             "frozen baseline (run once, on the pre-optimization code)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the full-DP geomean speedup meets "
             f"{SPEEDUP_TARGET}x and all decisions match the baseline",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI regression tripwire: Camera Pipeline only, 1 repeat",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None,
        help="fail if any full-DP run exceeds this many seconds",
    )
    args = parser.parse_args(argv)

    abbrevs = args.pipelines
    repeats = args.repeats
    if args.quick:
        abbrevs = ["CP"]
        repeats = 1

    if args.capture_baseline:
        return capture_baseline(abbrevs, repeats)
    return run(abbrevs, repeats, args.check, args.output, args.budget_s)


if __name__ == "__main__":
    sys.exit(main())
