"""Table 1 — cost-function weights for the two machines.

Prints the paper's literal weight values next to this reproduction's
calibrated weights (see ``repro.model.weights`` for why the units differ),
and benchmarks one full cost-function evaluation (geometry + tile sizes +
criteria), the operation the DP performs per candidate group.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import write_result
from repro.model import AMD_OPTERON, PAPER_TABLE1, XEON_HASWELL, group_cost
from repro.pipelines import unsharp
from repro.poly.alignscale import _GEOMETRY_CACHE  # noqa: F401
from repro.reporting import format_table


def _table_text() -> str:
    rows = []
    for label, machine in (("Intel Xeon", XEON_HASWELL),
                           ("AMD Opteron", AMD_OPTERON)):
        pw = PAPER_TABLE1[label]
        w = machine.weights
        rows.append([label, "paper", pw[0], pw[1], pw[2], pw[3]])
        rows.append([label, "ours", w.w1, w.w2, w.w3, w.w4])
    return format_table(
        "Table 1: cost-function weights (paper vs calibrated)",
        ["system", "source", "w1", "w2", "w3", "w4"],
        rows,
        note="Units differ: see repro/model/weights.py for the mapping.",
    )


def test_table1_weights_report():
    text = _table_text()
    print("\n" + text)
    write_result("table1_weights.txt", text)
    # The paper's relative pattern is preserved in the calibration.
    assert XEON_HASWELL.weights.w1 > AMD_OPTERON.weights.w1
    assert XEON_HASWELL.weights.w4 < AMD_OPTERON.weights.w4
    assert XEON_HASWELL.weights.w3 == AMD_OPTERON.weights.w3


def test_cost_function_evaluation_speed(benchmark):
    """One COST(H) call on the full Unsharp Mask group (paper size)."""
    pipe = unsharp.build()
    members = tuple(pipe.stages)

    def evaluate():
        # invalidate the geometry memo so the benchmark measures real work
        from repro.poly import alignscale

        if alignscale._GEOMETRY_CACHE is not None:
            alignscale._GEOMETRY_CACHE.pop(pipe, None)
        return group_cost(pipe, members, XEON_HASWELL)

    result = benchmark(evaluate)
    assert result.valid
