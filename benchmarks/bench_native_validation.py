"""Native validation — generated C++ measured on real hardware.

The rest of the harness prices schedules with the analytic timing model.
This bench closes the loop on actual silicon: it *generates*, *compiles*
(g++ -O3 -fopenmp -march=native) and *times* PolyMage-style C++ for
Unsharp Mask on the build machine, comparing

1. the Table 5 tile configurations (128x256 vs the model's 5x256-class
   choice), and
2. the PolyMageDP schedule against the PolyMage-A (auto-tuned greedy)
   schedule,

each at the paper's image size.  This machine is neither of the paper's
testbeds, so absolute times differ, but the paper's claims under test —
the L1 tile beats the L2-spilling tile; the DP schedule is at least
competitive with the tuned one — are checked on real hardware.

Skipped when no g++ is available.
"""

import os
import shutil
import subprocess
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import numpy as np
import pytest

from common import write_result
from repro.codegen import generate_cpp, generate_main
from repro.fusion import dp_group, manual_grouping, polymage_autotune
from repro.model import XEON_HASWELL
from repro.pipelines import unsharp
from repro.reporting import format_table

needs_gxx = pytest.mark.skipif(
    shutil.which("g++") is None, reason="g++ not available"
)

REPEATS = 5


def _native_ms(pipeline, grouping, tmpdir, tag) -> float:
    code = generate_cpp(pipeline, grouping) + generate_main(
        pipeline, repeats=REPEATS
    )
    src = os.path.join(tmpdir, f"{tag}.cpp")
    exe = os.path.join(tmpdir, tag)
    with open(src, "w") as fh:
        fh.write(code)
    subprocess.run(
        ["g++", "-O3", "-fopenmp", "-march=native", "-o", exe, src],
        check=True, capture_output=True,
    )
    rng = np.random.default_rng(0)
    in_paths, out_paths = [], []
    for img in pipeline.images:
        path = os.path.join(tmpdir, f"{tag}_{img.name}.bin")
        rng.random(pipeline.image_shape(img), dtype=np.float32).tofile(path)
        in_paths.append(path)
    for out in pipeline.outputs:
        out_paths.append(os.path.join(tmpdir, f"{tag}_out_{out.name}.bin"))
    result = subprocess.run(
        [exe] + in_paths + out_paths, check=True, capture_output=True,
        text=True,
    )
    return float(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def native(tmp_path_factory):
    tmpdir = str(tmp_path_factory.mktemp("native"))
    pipe = unsharp.build()  # paper size 4256x2832x3
    fused = [["blurx", "blury", "sharpen", "masked"]]
    times = {}
    times["tile 128x256 (L2-spilling)"] = _native_ms(
        pipe, manual_grouping(pipe, fused, [[3, 128, 256]]), tmpdir, "t128"
    )
    times["tile 16x256"] = _native_ms(
        pipe, manual_grouping(pipe, fused, [[3, 16, 256]]), tmpdir, "t16"
    )
    dp = dp_group(pipe, XEON_HASWELL)
    times[f"PolyMageDP ({list(dp.tile_sizes[0])})"] = _native_ms(
        pipe, dp, tmpdir, "dp"
    )
    tuned = polymage_autotune(pipe, XEON_HASWELL).best
    times[f"PolyMage-A ({list(tuned.tile_sizes[0])})"] = _native_ms(
        pipe, tuned, tmpdir, "tuned"
    )
    return times


@needs_gxx
def test_native_report(native):
    rows = [[name, round(ms, 2)] for name, ms in native.items()]
    text = format_table(
        "Native validation: generated C++ for Unsharp Mask on this machine "
        f"(min of {REPEATS} runs, ms)",
        ["configuration", "ms"],
        rows,
    )
    print("\n" + text)
    write_result("native_validation.txt", text)


@needs_gxx
def test_model_tile_beats_l2_spilling_tile_on_real_hardware(native):
    dp_time = min(ms for name, ms in native.items() if "PolyMageDP" in name)
    big_tile = native["tile 128x256 (L2-spilling)"]
    assert dp_time < big_tile * 1.05


@needs_gxx
def test_dp_competitive_with_autotuned_on_real_hardware(native):
    dp_time = min(ms for name, ms in native.items() if "PolyMageDP" in name)
    tuned = min(ms for name, ms in native.items() if "PolyMage-A" in name)
    # "better than or competitive with an auto-tuned approach"
    assert dp_time <= tuned * 1.25


@needs_gxx
def test_native_pipeline_speed(benchmark, tmp_path):
    """Wall time of one generated-binary run at 1/4 the paper size."""
    pipe = unsharp.build(1024, 768)
    dp = dp_group(pipe, XEON_HASWELL)
    code = generate_cpp(pipe, dp) + generate_main(pipe)
    src = str(tmp_path / "um.cpp")
    exe = str(tmp_path / "um")
    with open(src, "w") as fh:
        fh.write(code)
    subprocess.run(["g++", "-O3", "-fopenmp", "-march=native", "-o", exe, src],
                   check=True, capture_output=True)
    rng = np.random.default_rng(0)
    in_path = str(tmp_path / "img.bin")
    rng.random(pipe.image_shape("img"), dtype=np.float32).tofile(in_path)
    out_path = str(tmp_path / "out.bin")
    benchmark(
        lambda: subprocess.run([exe, in_path, out_path], check=True)
    )
