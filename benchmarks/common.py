"""Shared driver for the paper-reproduction benchmarks.

Builds each benchmark at its paper image size, runs all four schedulers
(H-manual, H-auto, PolyMage-A, PolyMageDP), and prices every resulting
schedule with the analytic timing model on both machines at 1 and 16
threads.  Results are cached per session (scheduling the large pipelines
takes seconds) and written as text tables under ``benchmarks/results/``.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fusion import (
    Grouping,
    halide_auto_schedule,
    inc_grouping,
    dp_group,
    polymage_autotune,
)
from repro.model import AMD_OPTERON, XEON_HASWELL, Machine
from repro.perfmodel import estimate_runtime
from repro.pipelines import BENCHMARKS, Benchmark

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: scheduling strategies in paper column order, with the code generator
#: whose vectorization behaviour they inherit (Sec. 6.2).
CONFIGS = (
    ("H-manual", "halide"),
    ("H-auto", "halide"),
    ("PolyMage-A", "polymage"),
    ("PolyMageDP", "polymage"),
)

#: DP budget: generous, but bounded so a bad configuration fails loudly.
MAX_STATES = 1_500_000


@dataclass
class BenchResult:
    """All schedules and timings for one benchmark on one machine."""

    abbrev: str
    machine: Machine
    groupings: Dict[str, Grouping]
    #: times in milliseconds, keyed (config, nthreads)
    times_ms: Dict[Tuple[str, int], float]


def machine_for(bench: Benchmark, machine: Machine) -> Machine:
    """Apply per-benchmark compiler behaviour: on the Opteron, g++ failed
    to vectorize Pyramid Blend entirely (Sec. 6.2)."""
    if machine is AMD_OPTERON and bench.abbrev == "PB":
        return dataclasses.replace(machine, autovec_float=False)
    return machine


def schedule_all(bench: Benchmark, machine: Machine) -> Dict[str, Grouping]:
    """Run the four schedulers of the paper's comparison."""
    pipe = bench.build()
    groupings = {
        "H-manual": bench.h_manual(pipe),
        "H-auto": halide_auto_schedule(pipe, machine),
        "PolyMage-A": polymage_autotune(pipe, machine).best,
    }
    if bench.abbrev == "PB":
        groupings["PolyMageDP"] = inc_grouping(
            pipe, machine, initial_limit=2, step=2, max_states=MAX_STATES
        )
    else:
        groupings["PolyMageDP"] = dp_group(pipe, machine, max_states=MAX_STATES)
    return groupings


_CACHE: Dict[Tuple[str, str], BenchResult] = {}


def run_benchmark(abbrev: str, machine: Machine) -> BenchResult:
    """Schedule + price one benchmark on one machine (memoised)."""
    key = (abbrev, machine.name)
    if key in _CACHE:
        return _CACHE[key]
    bench = BENCHMARKS[abbrev]
    eff_machine = machine_for(bench, machine)
    groupings = schedule_all(bench, eff_machine)
    pipe = next(iter(groupings.values())).pipeline
    times: Dict[Tuple[str, int], float] = {}
    for config, codegen in CONFIGS:
        g = groupings[config]
        for nthreads in (1, 16):
            t = estimate_runtime(
                pipe, g, eff_machine, nthreads=nthreads, codegen=codegen
            )
            times[(config, nthreads)] = t * 1e3
    result = BenchResult(
        abbrev=abbrev, machine=eff_machine, groupings=groupings,
        times_ms=times,
    )
    _CACHE[key] = result
    return result


def paper_row(bench: Benchmark, machine: Machine):
    return bench.paper_xeon if machine is XEON_HASWELL else bench.paper_opteron


def paper_time(bench: Benchmark, machine: Machine, config: str,
               nthreads: int) -> float:
    row = paper_row(bench, machine)
    col = {
        "H-manual": row.h_manual,
        "H-auto": row.h_auto,
        "PolyMage-A": row.polymage_a,
        "PolyMageDP": row.polymage_dp,
    }[config]
    return col[0] if nthreads == 1 else col[1]


def write_result(filename: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as fh:
        fh.write(text + "\n")
