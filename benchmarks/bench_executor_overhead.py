"""Per-tile executor overhead: interpreted vs per-stage vs fused vs reuse.

The paper's cost model reasons about locality and parallelism, but a
Python interpreter that re-walks each stage's expression tree per tile
adds per-tile overhead the model knows nothing about — the motivation for
the compiled-kernel layer in :mod:`repro.runtime.kernelcache`.  This
benchmark measures that overhead directly: every registered benchmark
pipeline is executed on its H-manual grouping with tile sizes clamped
small (so the tile count is high and per-tile dispatch dominates), with
``compile_kernels=False`` (interpreter), with per-stage kernels
(``fuse_kernels=False``), with the fused per-group kernels, and with
fused kernels plus inter-tile halo reuse, on one thread.  Reported per
pipeline: total wall time, tile count, per-tile microseconds for all four
modes, the compiled-vs-interpreted, fused-vs-per-stage and
reuse-vs-fused speedups, and the model-predicted
``overlap_recompute_fraction`` (the redundant-work share reuse can
claim).  The per-stage compiled path is then re-run at each ``--threads``
count (default 1/2/4) to record the chunked tile scheduler's parallel
scaling and efficiency.

Results land in ``BENCH_executor.json`` (see ``--output``) — the repo's
executor-performance trajectory, stamped with the machine's
``cpu_count``.  ``--check`` exits nonzero when compiled execution is
slower than interpreted, fused is slower than per-stage, halo reuse is
slower than fused (per pipeline or by geomean), or any output
mismatches — which is how CI smoke-tests the fast path.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor_overhead.py
    PYTHONPATH=src python benchmarks/bench_executor_overhead.py \
        --pipelines UM --repeats 5 --check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fusion.grouping import Grouping
from repro.pipelines import BENCHMARKS
from repro.poly.alignscale import compute_group_geometry
from repro.runtime import (
    clear_kernel_cache,
    execute_grouping,
    warm_group_kernels,
)
from repro.runtime.executor import _CHUNKS_PER_WORKER  # noqa: F401 - doc link

#: Tile sizes are clamped to this per dimension so every pipeline runs
#: hundreds of tiles — the regime where per-tile overhead, not arithmetic,
#: dominates and the interpreted/compiled difference is what's measured.
MAX_TILE = 32

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_executor.json",
)


def _clamped_grouping(pipe, grouping: Grouping) -> Grouping:
    tiles = tuple(
        tuple(min(t, MAX_TILE) for t in ts) for ts in grouping.tile_sizes
    )
    return dataclasses.replace(grouping, tile_sizes=tiles)


def _count_tiles(pipe, grouping: Grouping) -> int:
    """Tiles executed across all groups (untiled groups count 1 region
    per member stage, matching what the executor actually runs)."""
    total = 0
    for members, tiles in zip(grouping.groups, grouping.tile_sizes):
        geom = compute_group_geometry(pipe, members)
        if geom is None or not tiles or len(tiles) != geom.ndim:
            total += len(members)
            continue
        n = 1
        for (lo, hi), t in zip(geom.grid_bounds, tiles):
            n *= -(-(hi - lo + 1) // t)
        total += n
    return total


def _inputs(pipe, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    out = {}
    for img in pipe.images:
        shape = pipe.image_shape(img)
        if img.scalar_type.np_dtype.kind in "ui":
            out[img.name] = rng.integers(0, 1024, shape).astype(
                img.scalar_type.np_dtype
            )
        else:
            out[img.name] = rng.random(shape, dtype=np.float32)
    return out


def _time_mode(pipe, grouping, inputs, compile_kernels: bool,
               repeats: int, nthreads: int = 1,
               fuse_kernels: bool = False,
               ) -> Tuple[float, Dict[str, np.ndarray]]:
    """Best-of-``repeats`` wall time; one untimed warmup run first (the
    warmup also populates the kernel cache, so compilation cost is
    excluded — it is paid once per pipeline, not per run)."""
    out = execute_grouping(
        pipe, grouping, inputs, nthreads=nthreads,
        compile_kernels=compile_kernels, fuse_kernels=fuse_kernels,
        halo_reuse=False,
    )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        out = execute_grouping(
            pipe, grouping, inputs, nthreads=nthreads,
            compile_kernels=compile_kernels, fuse_kernels=fuse_kernels,
            halo_reuse=False,
        )
        best = min(best, time.perf_counter() - start)
    return best, out


def _time_reuse_pair(pipe, grouping, inputs, repeats: int,
                     ) -> Tuple[float, float, Dict[str, np.ndarray]]:
    """Interleaved fused-vs-reuse timing: the two modes alternate
    round-robin within each repeat so machine-load drift hits both
    equally (sequential best-of-N on a shared CI box routinely shows
    10-20%% phantom deltas between identical code paths).  Returns
    ``(fused_best, reuse_best, reuse_outputs)``."""
    best = [float("inf"), float("inf")]
    out_r: Dict[str, np.ndarray] = {}
    for reuse in (False, True):  # warmup both modes
        execute_grouping(
            pipe, grouping, inputs, nthreads=1,
            compile_kernels=True, fuse_kernels=True, halo_reuse=reuse,
        )
    for _ in range(max(repeats, 3)):
        for k, reuse in enumerate((False, True)):
            start = time.perf_counter()
            out = execute_grouping(
                pipe, grouping, inputs, nthreads=1,
                compile_kernels=True, fuse_kernels=True, halo_reuse=reuse,
            )
            elapsed = time.perf_counter() - start
            if elapsed < best[k]:
                best[k] = elapsed
            if reuse:
                out_r = out
    return best[0], best[1], out_r


def _overlap_recompute_fraction(pipe, grouping: Grouping) -> float:
    """Model-predicted redundant-work share of the grouping: overlap
    points over total computed points, summed over every tiled group at
    its (clamped) tile shape — the share of execution halo reuse can
    claim back, recorded next to what it actually delivered."""
    from repro.poly.overlap import overlap_size, tile_volume

    ovl_total = 0.0
    vol_total = 0.0
    for members, tiles in zip(grouping.groups, grouping.tile_sizes):
        geom = compute_group_geometry(pipe, members)
        if geom is None or not tiles or len(tiles) != geom.ndim:
            continue
        n = 1
        for (lo, hi), t in zip(geom.grid_bounds, tiles):
            n *= -(-(hi - lo + 1) // t)
        ovl_total += overlap_size(geom, tiles) * n
        vol_total += tile_volume(geom, tiles) * n
    return ovl_total / vol_total if vol_total else 0.0


def run(abbrevs: List[str], repeats: int,
        threads: Optional[List[int]] = None) -> List[dict]:
    threads = threads or [1, 2, 4]
    records = []
    for ab in abbrevs:
        bench = BENCHMARKS[ab]
        pipe = bench.build(**bench.small_kwargs)
        grouping = _clamped_grouping(pipe, bench.h_manual(pipe))
        n_tiles = _count_tiles(pipe, grouping)
        inputs = _inputs(pipe)
        clear_kernel_cache()
        # Groups the fused tier actually covers; a pipeline whose
        # grouping is all singletons (or nothing fuses) runs the same
        # code in both compiled modes and its ratio is pure noise.
        n_fused = len(warm_group_kernels(pipe, grouping.groups))

        t_interp, out_i = _time_mode(pipe, grouping, inputs, False, repeats)
        t_compiled, out_c = _time_mode(pipe, grouping, inputs, True, repeats)
        t_fused, out_f = _time_mode(pipe, grouping, inputs, True, repeats,
                                    fuse_kernels=True)
        # Fourth mode: fused kernels + inter-tile halo reuse, timed
        # interleaved against a fused re-run so the ratio is drift-free.
        t_fused_ab, t_reuse, out_r = _time_reuse_pair(
            pipe, grouping, inputs, repeats
        )

        # Thread sweep on the per-stage compiled path: parallel
        # efficiency of the chunked tile scheduler, normalized to its
        # own 1-thread time.
        sweep: Dict[str, Dict[str, float]] = {}
        for n in threads:
            t_n = (
                t_compiled if n == 1
                else _time_mode(pipe, grouping, inputs, True, repeats, n)[0]
            )
            sweep[str(n)] = {
                "seconds": round(t_n, 6),
                "scaling": round(t_compiled / t_n, 3),
                "efficiency": round(t_compiled / t_n / n, 3),
            }

        matches = all(
            np.allclose(
                out_i[k].astype(np.float64), out_c[k].astype(np.float64),
                atol=1e-5, rtol=1e-5,
            )
            for k in out_i
        ) and all(
            # the fused tier must be bit-identical to the per-stage tier
            np.array_equal(out_c[k], out_f[k]) for k in out_c
        ) and all(
            # halo reuse must be bit-identical to the full-halo path
            np.array_equal(out_f[k], out_r[k]) for k in out_f
        )
        reuse_speedup = t_fused_ab / t_reuse
        rec = {
            "pipeline": ab,
            "name": bench.name,
            "stages": len(pipe.stages),
            "tiles": n_tiles,
            "fused_groups": n_fused,
            "interpreted_s": round(t_interp, 6),
            "compiled_s": round(t_compiled, 6),
            "fused_s": round(t_fused, 6),
            "reuse_s": round(t_reuse, 6),
            "interpreted_us_per_tile": round(t_interp / n_tiles * 1e6, 2),
            "compiled_us_per_tile": round(t_compiled / n_tiles * 1e6, 2),
            "fused_us_per_tile": round(t_fused / n_tiles * 1e6, 2),
            "reuse_us_per_tile": round(t_reuse / n_tiles * 1e6, 2),
            "speedup": round(t_interp / t_compiled, 3),
            "fused_speedup": round(t_compiled / t_fused, 3),
            "reuse_speedup": round(reuse_speedup, 3),
            "overlap_recompute_fraction": round(
                _overlap_recompute_fraction(pipe, grouping), 4
            ),
            "outputs_match": bool(matches),
            "threads": sweep,
        }
        records.append(rec)
        scaling = "  ".join(
            f"{n}t {sweep[str(n)]['scaling']:.2f}x" for n in threads
        )
        print(
            f"{ab:>3}  {n_tiles:>5} tiles  "
            f"interp {rec['interpreted_us_per_tile']:>8.1f} us/tile  "
            f"compiled {rec['compiled_us_per_tile']:>8.1f} us/tile  "
            f"fused {rec['fused_us_per_tile']:>8.1f} us/tile  "
            f"reuse {rec['reuse_us_per_tile']:>8.1f} us/tile  "
            f"speedup {rec['speedup']:>6.2f}x  "
            f"fused {rec['fused_speedup']:>5.2f}x  "
            f"reuse {rec['reuse_speedup']:>5.2f}x  "
            f"ovl {rec['overlap_recompute_fraction']:.3f}  "
            f"{'OK' if matches else 'MISMATCH'}  [{scaling}]"
        )
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipelines", nargs="+", choices=sorted(BENCHMARKS),
        default=sorted(BENCHMARKS),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threads", nargs="+", type=int, default=[1, 2, 4],
        help="thread counts for the compiled-path scaling sweep",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if compiled is slower than interpreted anywhere, "
             "or any output mismatches",
    )
    args = parser.parse_args(argv)

    records = run(args.pipelines, args.repeats, args.threads)
    fusable = [r for r in records if r["fused_groups"]]
    fused_geomean = float(np.exp(np.mean(
        [np.log(max(r["fused_speedup"], 1e-9)) for r in fusable]
    ))) if fusable else 1.0
    reuse_geomean = float(np.exp(np.mean(
        [np.log(max(r["reuse_speedup"], 1e-9)) for r in records]
    ))) if records else 1.0
    payload = {
        "benchmark": "executor_overhead",
        "description": "interpreted vs per-stage vs fused vs fused+halo-"
                       "reuse per-tile cost (1 thread) plus a "
                       "compiled-path thread-scaling sweep, H-manual "
                       f"grouping with tiles clamped to {MAX_TILE}",
        "max_tile": MAX_TILE,
        "repeats": args.repeats,
        "threads": args.threads,
        "cpu_count": os.cpu_count(),
        "fused_speedup_geomean": round(fused_geomean, 3),
        "reuse_speedup_geomean": round(reuse_geomean, 3),
        "results": records,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    print(f"fused-vs-per-stage geomean {fused_geomean:.2f}x "
          f"({len(fusable)}/{len(records)} pipelines with fused groups)")
    print(f"reuse-vs-fused geomean {reuse_geomean:.2f}x "
          f"({len(records)} pipelines)")

    if args.check:
        bad = [
            r["pipeline"] for r in records
            if r["speedup"] < 1.0
            or (r["fused_groups"] and r["fused_speedup"] < 1.0)
            or r["reuse_speedup"] < 1.0
            or not r["outputs_match"]
        ]
        if bad or reuse_geomean <= 1.0:
            print(f"FAIL: compiled slower than interpreted, fused slower "
                  f"than per-stage, reuse slower than fused "
                  f"(geomean {reuse_geomean:.3f}x), or outputs "
                  f"mismatched on {bad}")
            return 1
        print("PASS: compiled >= interpreted, fused >= per-stage and "
              "reuse >= fused on all measured pipelines "
              f"(reuse geomean {reuse_geomean:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
