"""Ablation — which cost criteria matter?

The paper's cost function combines four weighted criteria (Sec. 4.1).
This ablation zeroes each weight in turn, re-runs the DP on Harris Corner
and Multiscale Interpolation, and prices the resulting schedule with the
timing model: dropping the locality term (w1) or the overlap term (w3)
should produce measurably worse schedules, demonstrating both criteria
pull their weight.
"""

import dataclasses
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.fusion import dp_group
from repro.model import XEON_HASWELL, CostModel, CostWeights
from repro.perfmodel import estimate_runtime
from repro.pipelines import BENCHMARKS
from repro.reporting import format_table

ABLATIONS = ["full", "w1=0", "w2=0", "w3=0", "w4=0"]


def _weights(name: str) -> CostWeights:
    base = XEON_HASWELL.weights
    kw = dict(w1=base.w1, w2=base.w2, w3=base.w3, w4=base.w4)
    if name != "full":
        kw[name.split("=")[0]] = 0.0
    return CostWeights(**kw)


@pytest.fixture(scope="module")
def ablation():
    out = {}
    for ab in ("HC", "MI"):
        pipe = BENCHMARKS[ab].build()
        for name in ABLATIONS:
            cm = CostModel(pipe, XEON_HASWELL, weights=_weights(name))
            g = dp_group(pipe, XEON_HASWELL, cost_model=cm,
                         max_states=1_200_000)
            t = estimate_runtime(pipe, g, XEON_HASWELL, 16) * 1e3
            out[(ab, name)] = (g.num_groups, t)
    return out


def test_ablation_report(ablation):
    rows = []
    for ab in ("HC", "MI"):
        for name in ABLATIONS:
            groups, t = ablation[(ab, name)]
            rows.append([
                BENCHMARKS[ab].name if name == "full" else "",
                name, groups, round(t, 2),
            ])
    text = format_table(
        "Ablation: DP schedules with individual cost criteria disabled",
        ["benchmark", "weights", "groups", "est. ms (16 cores)"],
        rows,
    )
    print("\n" + text)
    write_result("ablation_weights.txt", text)


def test_full_model_is_never_worst(ablation):
    for ab in ("HC", "MI"):
        times = {n: ablation[(ab, n)][1] for n in ABLATIONS}
        assert times["full"] < max(times.values()) or len(set(times.values())) == 1


def test_dropping_locality_changes_or_degrades(ablation):
    # Without w1 there is no reason to fuse at all; the schedule must
    # change structure or get slower on at least one benchmark.
    changed = False
    for ab in ("HC", "MI"):
        full_groups, full_t = ablation[(ab, "full")]
        g0, t0 = ablation[(ab, "w1=0")]
        if g0 != full_groups or t0 > full_t * 1.05:
            changed = True
    assert changed


def test_ablated_dp_speed(benchmark):
    pipe = BENCHMARKS["HC"].build()
    cm = CostModel(pipe, XEON_HASWELL, weights=_weights("w3=0"))
    benchmark(lambda: dp_group(pipe, XEON_HASWELL, cost_model=cm))
