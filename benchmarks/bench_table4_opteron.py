"""Table 4 — execution times on the AMD Opteron, 1 and 16 cores.

Same protocol as Table 3 on the second machine, including the paper's
Sec. 6.2 vectorization findings: g++ auto-vectorization fails for the
integer-heavy/data-dependent benchmarks (BG, MI, CP) and entirely for
Pyramid Blend, while Halide's intrinsics are unaffected — so H-manual and
H-auto win those benchmarks here even where PolyMageDP wins on the Xeon.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import CONFIGS, paper_time, run_benchmark, write_result
from repro.model import AMD_OPTERON
from repro.pipelines import BENCHMARKS
from repro.reporting import format_speedup, format_table

MACHINE = AMD_OPTERON
ORDER = ["UM", "HC", "BG", "MI", "CP", "PB"]


@pytest.fixture(scope="module")
def results():
    return {ab: run_benchmark(ab, MACHINE) for ab in ORDER}


def test_table4_report(results):
    headers = ["benchmark"]
    for cfg, _ in CONFIGS:
        for nt in (1, 16):
            headers += [f"{cfg}/{nt}", "paper"]
    headers += ["vs H-man", "vs H-auto", "vs P-A"]
    rows = []
    for ab in ORDER:
        r = results[ab]
        bench = BENCHMARKS[ab]
        row = [bench.name]
        for cfg, _ in CONFIGS:
            for nt in (1, 16):
                row.append(round(r.times_ms[(cfg, nt)], 2))
                row.append(paper_time(bench, MACHINE, cfg, nt))
        dp16 = r.times_ms[("PolyMageDP", 16)]
        row.append(format_speedup(dp16, r.times_ms[("H-manual", 16)]))
        row.append(format_speedup(dp16, r.times_ms[("H-auto", 16)]))
        row.append(format_speedup(dp16, r.times_ms[("PolyMage-A", 16)]))
        rows.append(row)
    text = format_table(
        "Table 4: execution times (ms) on AMD Opteron (measured | paper)",
        headers,
        rows,
    )
    print("\n" + text)
    write_result("table4_opteron.txt", text)


class TestPaperShape:
    """Qualitative Table 4 claims."""

    def test_dp_beats_everyone_on_unsharp(self, results):
        r = results["UM"].times_ms
        dp = r[("PolyMageDP", 16)]
        assert all(dp <= r[(cfg, 16)] for cfg, _ in CONFIGS)

    def test_dp_at_least_parity_with_polymage_a(self, results):
        # Paper: PolyMageDP vs PolyMage-A in [0.90, 4.32] — near parity or
        # better on every benchmark.
        for ab in ORDER:
            r = results[ab].times_ms
            assert r[("PolyMageDP", 16)] <= r[("PolyMage-A", 16)] * 1.15, ab

    def test_halide_wins_camera_pipeline(self, results):
        # Sec. 6.2: integer demosaic defeats g++ auto-vectorization.
        r = results["CP"].times_ms
        assert r[("H-manual", 16)] < r[("PolyMageDP", 16)]

    def test_halide_wins_bilateral_grid(self, results):
        r = results["BG"].times_ms
        h_best = min(r[("H-manual", 16)], r[("H-auto", 16)])
        assert h_best < r[("PolyMageDP", 16)]

    def test_h_manual_collapses_on_pyramid_blend(self, results):
        # Paper: 366 ms — by far the slowest configuration.
        r = results["PB"].times_ms
        assert r[("H-manual", 16)] == max(r[(cfg, 16)] for cfg, _ in CONFIGS)

    def test_opteron_slower_than_xeon(self, results):
        from repro.model import XEON_HASWELL

        xeon = run_benchmark("UM", XEON_HASWELL)
        assert (
            results["UM"].times_ms[("PolyMageDP", 16)]
            > xeon.times_ms[("PolyMageDP", 16)]
        )


def test_opteron_scheduling_speed(benchmark):
    """Full PolyMageDP scheduling of Harris for the Opteron."""
    from repro.fusion import dp_group

    pipe = BENCHMARKS["HC"].build()
    benchmark(lambda: dp_group(pipe, MACHINE, max_states=1_200_000))
