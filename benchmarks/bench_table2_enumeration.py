"""Table 2 — benchmark summary: stages, image size, max|succ(G)|,
groupings (DP states) enumerated per group limit, and grouping time.

The DP state counts depend on the exact DAG representation; the paper's
counts (from PolyMage's internal benchmark encodings) are printed next to
ours.  Pyramid Blend's unbounded DP is exponential (Sec. 3.3) — exactly
why the paper introduces the bounded incremental variant — so PB's
``l = inf`` column is produced by INC-GROUPING with ``l0 = 2``.
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest

from common import write_result
from repro.fusion import dp_group, dp_group_bounded, inc_grouping
from repro.fusion.dp import GroupingBudgetExceeded
from repro.graph import StageGraph
from repro.model import XEON_HASWELL
from repro.pipelines import BENCHMARKS
from repro.reporting import format_table

# Generous for every configuration that terminates (the largest real
# count is PB's ~29k); PB's *bounded* single-pass runs are exponential
# and only need to fail fast enough to report "budget".
MAX_STATES = 400_000

#: group limits per benchmark: Camera Pipeline and Pyramid Blend are the
#: ones the paper sweeps over l (Table 2 shows "-" for the others).
LIMITS = {
    "UM": [None],
    "HC": [None],
    "BG": [None],
    "MI": [None],
    "CP": [None, 32, 16, 8],
    "PB": [None, 32, 16, 8],
}


def _run_one(pipe, abbrev, limit):
    start = time.perf_counter()
    try:
        if limit is None and abbrev == "PB":
            g = inc_grouping(pipe, XEON_HASWELL, initial_limit=2, step=2,
                             max_states=MAX_STATES)
            label = "inc(l0=2)"
        elif limit is None:
            g = dp_group(pipe, XEON_HASWELL, max_states=MAX_STATES)
            label = "inf"
        else:
            g = dp_group_bounded(pipe, XEON_HASWELL, limit,
                                 max_states=MAX_STATES)
            label = str(limit)
        return label, g.stats.enumerated, time.perf_counter() - start
    except GroupingBudgetExceeded:
        return (str(limit) if limit else "inf"), -1, time.perf_counter() - start


@pytest.fixture(scope="module")
def table2():
    rows = []
    for abbrev, bench in BENCHMARKS.items():
        pipe = bench.build()
        graph = StageGraph.from_pipeline(pipe)
        size = "x".join(str(v) for v in bench.image_size)
        for limit in LIMITS[abbrev]:
            label, states, seconds = _run_one(pipe, abbrev, limit)
            key = "inf" if limit is None else str(limit)
            paper_states = bench.paper_groupings.get(key, None)
            paper_time_s = bench.paper_time_s.get(key, None)
            rows.append([
                bench.name if limit is None else "",
                pipe.num_stages if limit is None else "",
                size if limit is None else "",
                graph.max_successor_count() if limit is None else "",
                label,
                states if states >= 0 else "budget",
                paper_states if paper_states is not None else "-",
                round(seconds, 2),
                paper_time_s if paper_time_s is not None else "-",
            ])
    return rows


def test_table2_report(table2):
    text = format_table(
        "Table 2: benchmark summary and grouping enumeration",
        ["benchmark", "stages", "size", "max|succ|", "l",
         "states", "paper", "time(s)", "paper(s)"],
        table2,
        note="PB l=inf uses the bounded incremental driver (see docstring).",
    )
    print("\n" + text)
    write_result("table2_enumeration.txt", text)

    by_bench = {}
    for row in table2:
        if row[0]:
            by_bench[row[0]] = row
    # Paper-shape checks: stage counts exact, linear UM enumerates 10.
    assert by_bench["Unsharp Mask"][1] == 4
    assert by_bench["Unsharp Mask"][5] == 10  # exactly the paper's count
    assert by_bench["Camera Pipeline"][1] == 32
    assert by_bench["Pyramid Blend"][1] == 44


def test_bounded_counts_decrease_with_limit(table2):
    """Smaller group limits enumerate no more states (Table 2's trend)."""
    cp_rows = [r for r in table2 if r[4] in ("32", "16", "8")]
    for rows in (cp_rows[:3], cp_rows[3:]):
        states = [r[5] for r in rows if isinstance(r[5], int)]
        assert states == sorted(states, reverse=True) or len(set(states)) == 1


def test_dp_grouping_speed_um(benchmark):
    pipe = BENCHMARKS["UM"].build()
    benchmark(lambda: dp_group(pipe, XEON_HASWELL))


def test_dp_grouping_speed_bg(benchmark):
    pipe = BENCHMARKS["BG"].build()
    benchmark(lambda: dp_group(pipe, XEON_HASWELL))


def test_dp_grouping_speed_cp(benchmark):
    pipe = BENCHMARKS["CP"].build()
    benchmark(lambda: dp_group(pipe, XEON_HASWELL, max_states=MAX_STATES))


def test_inc_grouping_speed_pb(benchmark):
    pipe = BENCHMARKS["PB"].build()
    benchmark(
        lambda: inc_grouping(pipe, XEON_HASWELL, initial_limit=2, step=2,
                             max_states=MAX_STATES)
    )
